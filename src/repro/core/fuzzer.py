"""Snapshot-based coverage-guided fuzzing.

The paper motivates hardware snapshotting for fuzzers as much as for DSE
(§II, citing Muench et al.):

    "fuzzing embedded systems requires to restart the target under test
    after each fuzzing input to reset a clean state for further test
    inputs. Without HardSnap, restarting the embedded systems requires a
    complete reboot of the device which is extremely slow."

This module is that use case: a small mutational, coverage-guided fuzzer
(AFL-style: seed corpus, havoc mutations, keep inputs that reach new
edges) running firmware *concretely* against a hardware target. The
harness contract: the firmware reads its input from a fixed RAM buffer
(``INPUT_ADDR``: one length word followed by the bytes).

Two reset backends, matching Fig. 1's cost axis:

* ``reset="snapshot"`` — capture the post-boot hardware state once, then
  restore it per input (HardSnap),
* ``reset="reboot"`` — full device reset per input, charged at the
  configured reboot time (the naive baseline).

Executions per second (modelled) is the headline metric the two differ
on; the explored coverage is identical by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.snapshot import SnapshotController
from repro.errors import FirmwarePanic, VmError
from repro.isa.assembler import Program
from repro.isa.cpu import Cpu, CpuExit
from repro.targets.base import HardwareTarget, HwSnapshot

INPUT_ADDR = 0xF000
MAX_INPUT = 0x400


@dataclass
class FuzzCrash:
    """One crashing input."""

    input_bytes: bytes
    reason: str
    pc: int
    execution: int


@dataclass
class FuzzReport:
    executions: int = 0
    crashes: List[FuzzCrash] = field(default_factory=list)
    corpus_size: int = 0
    edges_covered: int = 0
    modelled_time_s: float = 0.0
    host_time_s: float = 0.0
    resets: int = 0

    @property
    def execs_per_modelled_second(self) -> float:
        if self.modelled_time_s == 0:
            return 0.0
        return self.executions / self.modelled_time_s

    def summary(self) -> str:
        return (f"[fuzz] execs={self.executions} crashes={len(self.crashes)} "
                f"corpus={self.corpus_size} edges={self.edges_covered} "
                f"modelled={self.modelled_time_s:.4f}s "
                f"({self.execs_per_modelled_second:.0f} exec/s)")


class SnapshotFuzzer:
    """Mutational coverage-guided fuzzer over a hardware target."""

    def __init__(self, program: Program, target: HardwareTarget,
                 seeds: Optional[List[bytes]] = None,
                 reset: str = "snapshot",
                 reboot_time_s: float = 0.25,
                 max_steps_per_exec: int = 20_000,
                 seed: int = 0):
        if reset not in ("snapshot", "reboot"):
            raise VmError(f"unknown reset mode {reset!r}")
        self.program = program
        self.target = target
        self.reset_mode = reset
        self.reboot_time_s = reboot_time_s
        self.max_steps = max_steps_per_exec
        self.rng = random.Random(seed)
        self.corpus: List[bytes] = list(seeds or [b"\x00"])
        self.edges: Set[Tuple[int, int]] = set()
        # Snapshots go through the controller so the boot image lands in
        # the content-addressed store (per-input restores dedup to it).
        self.controller = SnapshotController(target)
        self._boot_snapshot: Optional[HwSnapshot] = None

    # -- harness -----------------------------------------------------------

    def _fresh_hardware(self) -> None:
        """Bring the hardware to the clean post-boot state."""
        if self.reset_mode == "reboot":
            self.target.reset()
            self.target.timer.add_fixed(self.reboot_time_s)
            return
        if self._boot_snapshot is None:
            self.controller.reset()
            self._boot_snapshot = self.controller.save()
        else:
            self.controller.restore(self._boot_snapshot)

    def _execute(self, data: bytes) -> Tuple[Optional[CpuExit],
                                             Set[Tuple[int, int]],
                                             Optional[str], int]:
        """One concrete execution; returns (exit, edges, crash reason, pc)."""
        cpu = Cpu(self.program,
                  mmio_read=self.target.read,
                  mmio_write=self.target.write,
                  irq_poll=self._irq_poll)
        cpu.store(INPUT_ADDR, len(data), 4)
        for i, byte in enumerate(data[:MAX_INPUT]):
            cpu.store(INPUT_ADDR + 4 + i, byte, 1)
        edges: Set[Tuple[int, int]] = set()
        last_pc = cpu.pc
        try:
            while cpu.steps < self.max_steps:
                exit_ = cpu.step()
                edges.add((last_pc, cpu.pc))
                last_pc = cpu.pc
                if exit_ is not None:
                    return exit_, edges, None, cpu.pc
            return None, edges, None, cpu.pc  # hang: treated as non-crash
        except FirmwarePanic as exc:
            return None, edges, str(exc), cpu.pc

    def _irq_poll(self) -> bool:
        self.target.step(1)
        return any(self.target.irq_lines().values())

    # -- mutation ------------------------------------------------------------------

    def _mutate(self, data: bytes) -> bytes:
        out = bytearray(data or b"\x00")
        for _ in range(self.rng.randint(1, 4)):
            choice = self.rng.randrange(5)
            if choice == 0 and out:  # bit flip
                i = self.rng.randrange(len(out))
                out[i] ^= 1 << self.rng.randrange(8)
            elif choice == 1 and out:  # byte set
                out[self.rng.randrange(len(out))] = self.rng.randrange(256)
            elif choice == 2 and len(out) < MAX_INPUT:  # insert
                out.insert(self.rng.randrange(len(out) + 1),
                           self.rng.randrange(256))
            elif choice == 3 and len(out) > 1:  # delete
                del out[self.rng.randrange(len(out))]
            else:  # interesting values
                value = self.rng.choice([0, 1, 0x7F, 0x80, 0xFF, 0x10, 0x41])
                if out:
                    out[self.rng.randrange(len(out))] = value
        return bytes(out)

    # -- main loop -------------------------------------------------------------------

    def run(self, executions: int = 200) -> FuzzReport:
        import time
        report = FuzzReport()
        start = time.perf_counter()
        modelled_start = self.target.timer.total_s
        for n in range(executions):
            parent = self.rng.choice(self.corpus)
            data = self._mutate(parent)
            self._fresh_hardware()
            report.resets += 1
            exit_, edges, crash, pc = self._execute(data)
            report.executions += 1
            if crash is not None:
                report.crashes.append(FuzzCrash(data, crash, pc, n))
                continue
            new_edges = edges - self.edges
            if new_edges:
                self.edges |= edges
                self.corpus.append(data)
        report.corpus_size = len(self.corpus)
        report.edges_covered = len(self.edges)
        report.host_time_s = time.perf_counter() - start
        report.modelled_time_s = self.target.timer.total_s - modelled_start
        return report
