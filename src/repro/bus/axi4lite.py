"""AXI4-Lite master bus functional model.

Drives the five AXI4-Lite channels of a simulated peripheral cycle by
cycle through the simulation's poke/peek API — the Python analogue of the
"memory bus abstraction layer" HardSnap links into the Verilator-generated
simulator (paper §IV-A, path A).

The BFM is handshake-accurate: a write issues AWVALID/WVALID and waits for
the peripheral's READY/BVALID responses, so the cycle cost of each access
is whatever the peripheral's AXI state machine takes, not a constant.

Signal naming convention (32-bit data bus)::

    s_axi_awvalid  s_axi_awready  s_axi_awaddr
    s_axi_wvalid   s_axi_wready   s_axi_wdata
    s_axi_bvalid   s_axi_bready
    s_axi_arvalid  s_axi_arready  s_axi_araddr
    s_axi_rvalid   s_axi_rready   s_axi_rdata
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import BusError
from repro.sim.base import BaseSimulation

DEFAULT_TIMEOUT_CYCLES = 64


@dataclass
class BusStats:
    reads: int = 0
    writes: int = 0
    read_cycles: int = 0
    write_cycles: int = 0

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    @property
    def total_cycles(self) -> int:
        return self.read_cycles + self.write_cycles


class Axi4LiteMaster:
    """Cycle-accurate AXI4-Lite master driving one simulated slave."""

    def __init__(self, sim: BaseSimulation, prefix: str = "s_axi_",
                 timeout: int = DEFAULT_TIMEOUT_CYCLES):
        self.sim = sim
        self.prefix = prefix
        self.timeout = timeout
        self.stats = BusStats()
        self._idle()

    def _sig(self, name: str) -> str:
        return self.prefix + name

    def _idle(self) -> None:
        """Deassert all master-driven signals."""
        self.sim.poke_many({
            self._sig("awvalid"): 0,
            self._sig("wvalid"): 0,
            self._sig("bready"): 0,
            self._sig("arvalid"): 0,
            self._sig("rready"): 0,
        })

    # -- transactions -----------------------------------------------------------

    def write(self, addr: int, data: int) -> int:
        """Write *data* to *addr*; returns the number of cycles consumed."""
        sim = self.sim
        start = sim.cycle
        sim.poke_many({
            self._sig("awvalid"): 1,
            self._sig("awaddr"): addr,
            self._sig("wvalid"): 1,
            self._sig("wdata"): data,
            self._sig("bready"): 1,
        })
        aw_done = False
        w_done = False
        for _ in range(self.timeout):
            aw_ready = sim.peek(self._sig("awready"))
            w_ready = sim.peek(self._sig("wready"))
            sim.step()
            if aw_ready and not aw_done:
                aw_done = True
                sim.poke(self._sig("awvalid"), 0)
            if w_ready and not w_done:
                w_done = True
                sim.poke(self._sig("wvalid"), 0)
            if aw_done and w_done:
                break
        else:
            self._idle()
            raise BusError(f"write to 0x{addr:x}: address/data phase timeout")
        for _ in range(self.timeout):
            if sim.peek(self._sig("bvalid")):
                sim.step()  # consume the response beat
                break
            sim.step()
        else:
            self._idle()
            raise BusError(f"write to 0x{addr:x}: no write response")
        self._idle()
        cycles = sim.cycle - start
        self.stats.writes += 1
        self.stats.write_cycles += cycles
        return cycles

    def read(self, addr: int) -> Tuple[int, int]:
        """Read *addr*; returns ``(data, cycles_consumed)``."""
        sim = self.sim
        start = sim.cycle
        sim.poke_many({
            self._sig("arvalid"): 1,
            self._sig("araddr"): addr,
            self._sig("rready"): 1,
        })
        for _ in range(self.timeout):
            ar_ready = sim.peek(self._sig("arready"))
            sim.step()
            if ar_ready:
                sim.poke(self._sig("arvalid"), 0)
                break
        else:
            self._idle()
            raise BusError(f"read of 0x{addr:x}: address phase timeout")
        for _ in range(self.timeout):
            if sim.peek(self._sig("rvalid")):
                data = sim.peek(self._sig("rdata"))
                sim.step()  # consume the data beat
                self._idle()
                cycles = sim.cycle - start
                self.stats.reads += 1
                self.stats.read_cycles += cycles
                return data, cycles
            sim.step()
        self._idle()
        raise BusError(f"read of 0x{addr:x}: no read data")
