"""Combinational cone extraction and single-use wire fusion.

A *cone* is the transitive combinational fan-in of a set of nets — the
blocks that must run, in dependency order, to (re)compute them.  The
optimizer uses the inverse idea for fusion: a wire driven by one
continuous assignment and read from exactly one combinational site is
pure plumbing, so its defining expression is grafted into the consumer
and the intermediate net disappears from the compiled netlist.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.hdl import ir

#: Refuse to graft defining expressions larger than this many nodes —
#: duplicating work is cheap, but exploding a consumer expression isn't.
_INLINE_NODE_LIMIT = 64


def comb_cone(design: ir.Design, targets: Iterable[str]) -> List[ir.CombBlock]:
    """Combinational blocks feeding *targets*, in evaluation order.

    The returned list is a sub-sequence of the full topological comb
    schedule: running exactly these blocks recomputes the target nets
    from the current values of registers, inputs and memories.
    """
    from repro.sim.scheduler import order_comb_blocks
    ordered = order_comb_blocks(design)
    writer_of: Dict[str, List[ir.CombBlock]] = {}
    for block in ordered:
        for name in block.writes:
            writer_of.setdefault(name, []).append(block)
    needed: Set[int] = set()
    frontier = list(targets)
    seen_nets: Set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in seen_nets:
            continue
        seen_nets.add(name)
        for block in writer_of.get(name, ()):
            if id(block) in needed:
                continue
            needed.add(id(block))
            frontier.extend(block.reads)
    return [block for block in ordered if id(block) in needed]


def flatten_cone(blocks: Iterable[ir.CombBlock]) -> List[ir.Stmt]:
    """The cone's statements as one straight-line list (already ordered)."""
    stmts: List[ir.Stmt] = []
    for block in blocks:
        stmts.extend(block.stmts)
    return stmts


# ---------------------------------------------------------------------------
# Single-use wire fusion
# ---------------------------------------------------------------------------

def _expr_size(expr: ir.Expr) -> int:
    size = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        size += 1
        if isinstance(node, ir.Unary):
            stack.append(node.operand)
        elif isinstance(node, ir.Binary):
            stack.extend((node.left, node.right))
        elif isinstance(node, ir.Ternary):
            stack.extend((node.cond, node.then, node.other))
        elif isinstance(node, ir.Concat):
            stack.extend(node.parts)
        elif isinstance(node, ir.Slice):
            stack.append(node.value)
        elif isinstance(node, ir.DynBit):
            stack.extend((node.value, node.index))
        elif isinstance(node, ir.MemRead):
            stack.append(node.index)
    return size


def _find_single_ref(design: ir.Design,
                     name: str) -> Optional[Tuple[ir.CombBlock, ir.Ref]]:
    """The unique comb-block Ref site of *name*, or None if the net is
    referenced zero times, more than once, or from a non-comb process."""
    found: List[Tuple[Optional[ir.CombBlock], ir.Ref]] = []

    def scan(expr: ir.Expr, block) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ir.Ref):
                if node.net.name == name:
                    found.append((block, node))
            elif isinstance(node, ir.Unary):
                stack.append(node.operand)
            elif isinstance(node, ir.Binary):
                stack.extend((node.left, node.right))
            elif isinstance(node, ir.Ternary):
                stack.extend((node.cond, node.then, node.other))
            elif isinstance(node, ir.Concat):
                stack.extend(node.parts)
            elif isinstance(node, ir.Slice):
                stack.append(node.value)
            elif isinstance(node, ir.DynBit):
                stack.extend((node.value, node.index))
            elif isinstance(node, ir.MemRead):
                stack.append(node.index)

    for block in design.comb_blocks:
        for stmt in ir._walk_stmts(block.stmts):
            for expr in _stmt_exprs(stmt):
                scan(expr, block)
    for seq in design.seq_blocks:
        for stmt in ir._walk_stmts(seq.stmts):
            for expr in _stmt_exprs(stmt):
                scan(expr, None)
    for init in design.init_blocks:
        for stmt in ir._walk_stmts(init.stmts):
            for expr in _stmt_exprs(stmt):
                scan(expr, None)
    if len(found) != 1 or found[0][0] is None:
        return None
    return found[0]  # type: ignore[return-value]


def _stmt_exprs(stmt: ir.Stmt):
    if isinstance(stmt, ir.SAssign):
        yield stmt.value
        for lv in ir._leaf_lvalues(stmt.target):
            if isinstance(lv, (ir.LNetDyn, ir.LMem)):
                yield lv.index
    elif isinstance(stmt, ir.SIf):
        yield stmt.cond
    elif isinstance(stmt, ir.SCase):
        yield stmt.subject


def _replace_ref(stmts: List[ir.Stmt], ref: ir.Ref,
                 replacement: ir.Expr) -> None:
    """Substitute the exact *ref* node (by identity) in place."""

    def sub(expr: ir.Expr) -> ir.Expr:
        if expr is ref:
            return replacement
        if isinstance(expr, ir.Unary):
            expr.operand = sub(expr.operand)
        elif isinstance(expr, ir.Binary):
            expr.left = sub(expr.left)
            expr.right = sub(expr.right)
        elif isinstance(expr, ir.Ternary):
            expr.cond = sub(expr.cond)
            expr.then = sub(expr.then)
            expr.other = sub(expr.other)
        elif isinstance(expr, ir.Concat):
            expr.parts = [sub(p) for p in expr.parts]
        elif isinstance(expr, ir.Slice):
            expr.value = sub(expr.value)
        elif isinstance(expr, ir.DynBit):
            expr.value = sub(expr.value)
            expr.index = sub(expr.index)
        elif isinstance(expr, ir.MemRead):
            expr.index = sub(expr.index)
        return expr

    for stmt in ir._walk_stmts(stmts):
        if isinstance(stmt, ir.SAssign):
            stmt.value = sub(stmt.value)
            for lv in ir._leaf_lvalues(stmt.target):
                if isinstance(lv, ir.LNetDyn):
                    lv.index = sub(lv.index)
                elif isinstance(lv, ir.LMem):
                    lv.index = sub(lv.index)
        elif isinstance(stmt, ir.SIf):
            stmt.cond = sub(stmt.cond)
        elif isinstance(stmt, ir.SCase):
            stmt.subject = sub(stmt.subject)


def inline_single_use_wires(design: ir.Design,
                            protected: Set[str]) -> List[str]:
    """Fuse single-writer, single-reader wires into their consumers.

    Mutates *design* in place and returns the names of fused wires.
    Only wires whose sole driver is a one-statement full-width blocking
    continuous assignment, and whose sole reference sits in another
    combinational block, are considered.
    """
    inlined: List[str] = []
    for _ in range(16):  # chains resolve over a few passes
        progress = False
        writers: Dict[str, List] = {}
        for block in design.comb_blocks:
            for name in block.writes:
                writers.setdefault(name, []).append(block)
        for seq in design.seq_blocks:
            _, w = ir.stmt_reads_writes(seq.stmts)
            for name in w:
                writers.setdefault(name, []).append(seq)
        for init in design.init_blocks:
            _, w = ir.stmt_reads_writes(init.stmts)
            for name in w:
                writers.setdefault(name, []).append(init)

        for name, net in list(design.nets.items()):
            if name in protected:
                continue
            blocks = writers.get(name, [])
            if len(blocks) != 1 or not isinstance(blocks[0], ir.CombBlock):
                continue
            producer = blocks[0]
            if len(producer.stmts) != 1:
                continue
            stmt = producer.stmts[0]
            if not (isinstance(stmt, ir.SAssign)
                    and isinstance(stmt.target, ir.LNet)
                    and stmt.target.net.name == name
                    and stmt.target.hi is None):
                continue
            if _expr_size(stmt.value) > _INLINE_NODE_LIMIT:
                continue
            site = _find_single_ref(design, name)
            if site is None:
                continue
            consumer, ref = site
            if consumer is producer:
                continue
            replacement = stmt.value
            if replacement.width != net.width:
                # Reads see the stored (masked) value; a slice reproduces
                # both the truncation and the zero extension.
                replacement = ir.Slice(replacement, net.width - 1, 0,
                                       width=net.width)
            _replace_ref(consumer.stmts, ref, replacement)
            design.comb_blocks.remove(producer)
            del design.nets[name]
            inlined.append(name)
            progress = True
            # The writer index stays valid: the producer wrote only this
            # net, and its expression moved (not vanished) into the
            # consumer, so other candidates' ref counts are unchanged.
        if not progress:
            break

    if inlined:
        for block in design.comb_blocks:
            reads, writes = ir.stmt_reads_writes(block.stmts)
            block.reads = frozenset(reads)
            block.writes = frozenset(writes)
    return inlined
