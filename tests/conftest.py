"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hdl import elaborate
from repro.peripherals import catalog

# A compact design exercising most RTL features: registers, memory,
# partial writes, case, concat lvalue, hierarchical instance, dynamic
# bit select, for-unrolled logic.
RICH_DESIGN = r"""
module child #(parameter W = 8) (
    input wire clk, input wire rst, input wire en,
    input wire [W-1:0] d, output reg [W-1:0] q
);
    always @(posedge clk) begin
        if (rst) q <= 0;
        else if (en) q <= d;
    end
endmodule

module rich (
    input wire clk, input wire rst,
    input wire [7:0] a, input wire [7:0] b, input wire [2:0] sel,
    output wire [7:0] y, output wire carry, output wire parity
);
    reg [7:0] acc;
    reg [8:0] wide;
    reg [7:0] mem [0:7];
    reg [2:0] wptr;
    reg [7:0] flags;
    wire [7:0] chained;
    child #(.W(8)) c0 (.clk(clk), .rst(rst), .en(1'b1), .d(a ^ b), .q(chained));

    integer i;
    reg [7:0] folded;
    always @(*) begin
        folded = 0;
        for (i = 0; i < 8; i = i + 1)
            folded = folded ^ (a >> i);
    end

    always @(posedge clk) begin
        if (rst) begin
            acc <= 0; wide <= 0; wptr <= 0; flags <= 8'hff;
        end else begin
            {wide[8], acc} <= {1'b0, a} + {1'b0, b};
            wide[7:0] <= a - b;
            mem[wptr] <= acc;
            wptr <= wptr + 1;
            flags[sel] <= a[0];
            case (sel)
                3'd0: flags[7:4] <= 4'h5;
                3'd1, 3'd2: flags[7:4] <= b[3:0];
                default: begin end
            endcase
        end
    end
    assign y = mem[sel] ^ chained ^ folded;
    assign carry = wide[8];
    assign parity = ^acc;
endmodule
"""


@pytest.fixture(scope="session")
def rich_design():
    return elaborate(RICH_DESIGN, "rich")


@pytest.fixture(scope="session")
def corpus_designs():
    return {spec.name: spec.elaborate() for spec in catalog.EXTENDED_CORPUS}
