"""Synthetic firmware corpus for the evaluation."""

from repro.firmware import programs
from repro.firmware.programs import (AES_BASE, DMA_BASE, GPIO_BASE, SHA_BASE,
                                     TIMER_BASE, UART_BASE, dispatcher,
                                     fig1_two_paths, fuzz_packet_parser,
                                     init_heavy, uart_echo,
                                     vuln_buffer_overflow, vuln_irq_race,
                                     vuln_peripheral_misuse,
                                     vuln_wdt_starvation, WDT_BASE)

__all__ = ["programs", "fig1_two_paths", "dispatcher", "init_heavy",
           "fuzz_packet_parser",
           "uart_echo", "vuln_buffer_overflow", "vuln_irq_race",
           "vuln_peripheral_misuse", "vuln_wdt_starvation",
           "TIMER_BASE", "UART_BASE", "AES_BASE", "WDT_BASE",
           "SHA_BASE", "GPIO_BASE", "DMA_BASE"]
