"""Worker-process side of the parallel runtime.

Each worker process owns a complete private analysis stack — target,
solver, snapshot store, engine — rebuilt from the coordinator's
:class:`~repro.parallel.recipe.SessionRecipe`. Work arrives as jobs on a
queue; results go back on a shared queue. Two harnesses:

* :class:`EngineWorker` — executes state *leases*
  (:meth:`~repro.core.engine.AnalysisEngine.run_lease`): restore the
  leased state's snapshot, run until it completes, forks, or exhausts
  its budget, ship resulting states back as delta-encoded
  :class:`~repro.core.persistence.SnapshotWire` packets,
* :class:`FuzzWorker` — executes fuzz input batches from the shared
  post-boot snapshot (captured once per worker, then restored per
  input — the HardSnap fuzzing loop).

``_worker_main`` is the process entry point; it must stay module-level
and import-light so it survives ``spawn`` start methods.
"""

from __future__ import annotations

import pickle
import struct
import traceback
from dataclasses import replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.fuzzer import execute_input
from repro.core.snapshot import SnapshotController
from repro.core.store import chunk_digest
from repro.parallel.recipe import SessionRecipe
from repro.parallel.wire import ChunkChannel
from repro.targets.base import HwSnapshot
from repro.vm.state import ExecState

#: Queue sentinel that shuts a worker down.
STOP = "__stop__"

#: Peer id workers use for the coordinator in their chunk channel.
COORD = "coord"

def pack_edges(edges: Set[Tuple[int, int]]) -> bytes:
    """Edge set -> compact sorted wire form (pc pairs, little-endian
    u32s). Cuts per-input result pickling to a fraction of a tuple
    list's cost — fuzz results are the parallel fuzzer's bulk traffic."""
    return b"".join(struct.pack("<II", a, b) for a, b in sorted(edges))


def unpack_edges(blob: bytes) -> Set[Tuple[int, int]]:
    return {(a, b) for a, b in struct.iter_unpack("<II", blob)}


#: Spacing between per-lease symbolic-variable counter bases. A single
#: lease never allocates this many fresh symbols, so bases assigned from
#: distinct lease sequence numbers can never collide — regardless of
#: which worker runs which lease.
SYM_BASE_STRIDE = 1_000_000


def _strip_snapshot(snapshot: Optional[HwSnapshot]) -> Optional[HwSnapshot]:
    """A picklable, store-record-free copy of *snapshot* (for bug
    reports crossing the process boundary)."""
    if snapshot is None:
        return None
    return HwSnapshot(states=dict(snapshot.states), method=snapshot.method,
                      bits=snapshot.bits,
                      modelled_cost_s=snapshot.modelled_cost_s)


class EngineWorker:
    """One worker's engine harness: a full HardSnap session plus the
    chunk channel its states travel over."""

    def __init__(self, recipe: SessionRecipe):
        self.session = recipe.build_session()
        self.engine = self.session.engine
        self.channel = ChunkChannel()
        self.bits_of = {name: inst.state_bits
                        for name, inst in
                        self.session.target.instances.items()}
        self._started = False

    # -- state (de)materialisation ------------------------------------------

    def _ship_state(self, state: ExecState) -> Tuple[bytes, Any]:
        """(pickled state sans snapshot, wire for its snapshot)."""
        snapshot = state.hw_snapshot
        if snapshot is None:
            # Active states always carry a snapshot by the time they
            # leave a lease (update_state/on_fork refreshed it); guard
            # anyway by capturing live hardware.
            snapshot = self.engine.controller.save()
            state.hw_snapshot = snapshot
        wire = self.channel.encode(snapshot, COORD, bits_of=self.bits_of)
        state.hw_snapshot = None
        try:
            blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            state.hw_snapshot = snapshot
        return blob, wire

    def _materialise(self, payload: Dict[str, Any]) -> ExecState:
        if payload["state"] is None:
            # Root lease: fresh hardware, fresh initial state.
            self.engine.strategy.on_start(None)  # controller.reset()
            state = self.session.make_initial_state()
            return state
        state: ExecState = pickle.loads(payload["state"])
        state.hw_snapshot = self.channel.decode(payload["wire"], COORD)
        return state

    # -- lease execution ----------------------------------------------------

    def run_lease(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        executor = self.engine.executor
        controller = self.engine.controller
        store = controller.store
        timer = self.session.target.timer

        executor._sym_counter = int(payload["sym_base"])
        state = self._materialise(payload)

        bugs_before = len(executor.bugs)
        coverage_before = set(executor.coverage)
        saves0, restores0 = (controller.stats.saves,
                             controller.stats.restores)
        logical0, stored0 = (store.stats.logical_bits,
                             store.stats.stored_bits)
        hits0, misses0, skips0 = (store.stats.chunk_hits,
                                  store.stats.chunk_misses,
                                  store.stats.capture_skips)
        modelled0 = timer.total_s

        outcome = self.engine.run_lease(
            state, max_instructions=int(payload.get("budget", 0)))

        continuation = (self._ship_state(state) if state.is_active
                        else None)
        children = [self._ship_state(fork) for fork in outcome.forks]
        new_bugs = [(replace(b, hw_snapshot=_strip_snapshot(b.hw_snapshot)),
                     state.lineage)
                    for b in executor.bugs[bugs_before:]]
        return {
            "executed": outcome.executed,
            "paused": outcome.paused,
            "continuation": continuation,
            "children": children,
            "completed": outcome.completed,
            "bugs": new_bugs,
            "coverage": sorted(set(executor.coverage) - coverage_before),
            "stats": {
                "saves": controller.stats.saves - saves0,
                "restores": controller.stats.restores - restores0,
                "logical_bits": store.stats.logical_bits - logical0,
                "stored_bits": store.stats.stored_bits - stored0,
                "chunk_hits": store.stats.chunk_hits - hits0,
                "chunk_misses": store.stats.chunk_misses - misses0,
                "capture_skips": store.stats.capture_skips - skips0,
                "chain_depth": store.stats.max_chain_depth,
            },
            "modelled_dt": timer.total_s - modelled0,
            "wire_stats": self.channel.stats,
        }


class FuzzWorker:
    """One worker's fuzz harness: target + post-boot snapshot, no VM."""

    def __init__(self, recipe: SessionRecipe):
        self.program = recipe.program
        self.target = recipe.target.build()
        self.max_steps = recipe.max_steps_per_exec
        self.controller = SnapshotController(self.target)
        self._boot: Optional[HwSnapshot] = None
        self.restores = 0

    def _fresh_hardware(self) -> None:
        # Mirrors SnapshotFuzzer._fresh_hardware (reset="snapshot"):
        # capture the post-boot state once, restore it per input.
        if self._boot is None:
            self.controller.reset()
            self._boot = self.controller.save()
        else:
            self.controller.restore(self._boot)

    def boot_digests(self) -> Dict[str, str]:
        """Chunk digests of the post-boot snapshot (per instance) — lets
        the coordinator verify all workers fuzz from the same state."""
        self._fresh_hardware()
        return {name: chunk_digest(state)
                for name, state in self._boot.states.items()}

    def run_batch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        modelled0 = self.target.timer.total_s
        results: List[Tuple[int, bytes, bytes, Optional[str], int]] = []
        for index, data in payload["items"]:
            self._fresh_hardware()
            self.restores += 1
            _exit, edges, crash, pc = execute_input(
                self.program, self.target, data, max_steps=self.max_steps)
            results.append((index, data, pack_edges(edges), crash, pc))
        return {
            "results": results,
            "modelled_dt": self.target.timer.total_s - modelled0,
            "resets": len(payload["items"]),
        }


_HARNESS_TYPES = {"engine": EngineWorker, "fuzz": FuzzWorker}


def _worker_main(worker_id: int, recipe: SessionRecipe,
                 jobs, results) -> None:
    """Worker process entry point: build harnesses lazily, serve jobs
    until the STOP sentinel arrives. Any exception is reported to the
    coordinator as an ``("error", id, traceback)`` message rather than
    killing the process silently."""
    harnesses: Dict[str, Any] = {}

    def harness(kind: str):
        if kind not in harnesses:
            harnesses[kind] = _HARNESS_TYPES[kind](recipe)
        return harnesses[kind]

    while True:
        job = jobs.get()
        if job == STOP:
            break
        kind, payload = job
        try:
            if kind == "warm":
                harness(payload["kind"])
                results.put(("warmed", worker_id, None))
            elif kind == "lease":
                results.put(("lease", worker_id,
                             harness("engine").run_lease(payload)))
            elif kind == "fuzz":
                results.put(("fuzz", worker_id,
                             harness("fuzz").run_batch(payload)))
            elif kind == "boot-digests":
                results.put(("boot-digests", worker_id,
                             harness("fuzz").boot_digests()))
            else:
                raise ValueError(f"unknown job kind {kind!r}")
        except BaseException:
            results.put(("error", worker_id, traceback.format_exc()))
