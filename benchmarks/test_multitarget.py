"""E5 — multi-target orchestration: FPGA speed, simulator visibility.

Paper §III-B: "the target orchestration enables to start the analysis on
the FPGA target and once a particular point is reached the FPGA state is
transferred to the Verilator target" — fast-forward through a long
warm-up at FPGA speed, then move the live hardware state onto the
simulator to capture a full VCD trace of the window of interest.

Compared against running the whole workload on the simulator target.
Expected shapes:
* the hybrid run is far cheaper in modelled time than simulator-only,
* the traced window is identical in both runs (same register values),
* the FPGA leg alone produces no trace (no visibility) — the transfer
  is what buys the waveform.
"""

from benchmarks.conftest import PERIPH_BASE, emit
from repro.analysis import format_si_time, format_table
from repro.peripherals import catalog, timer
from repro.sim import VcdWriter
from repro.targets import FpgaTarget, SimulatorTarget, TargetOrchestrator

WARMUP_CYCLES = 200_000
WINDOW_CYCLES = 64


def _build_pair():
    fpga = FpgaTarget(scan_mode="functional")
    sim = SimulatorTarget()
    for t in (fpga, sim):
        t.add_peripheral(catalog.TIMER, PERIPH_BASE)
        t.reset()
    orch = TargetOrchestrator()
    orch.register(fpga, active=True)
    orch.register(sim)
    return orch, fpga, sim


def _warmup(target):
    target.write(PERIPH_BASE + timer.REGISTERS["PRESCALE"], 0xFF)
    target.write(PERIPH_BASE + timer.REGISTERS["LOAD"], 700)
    target.write(PERIPH_BASE + timer.REGISTERS["CTRL"],
                 timer.CTRL_EN | timer.CTRL_AUTO_RELOAD)
    target.step(WARMUP_CYCLES)


def test_multitarget_fast_forward(benchmark):
    def run():
        # Hybrid: warm up on the FPGA, transfer, trace on the simulator.
        orch, fpga, sim = _build_pair()
        _warmup(fpga)
        orch.transfer("fpga", "simulator")
        writer = sim.attach_vcd("timer")
        sim.step(WINDOW_CYCLES)
        hybrid_cost = orch.modelled_time_s()
        hybrid_value = sim.peek("timer", "value")
        changes = writer.changes

        # Simulator-only reference.
        ref = SimulatorTarget()
        ref.add_peripheral(catalog.TIMER, PERIPH_BASE)
        ref.reset()
        _warmup(ref)
        ref_writer = ref.attach_vcd("timer")
        ref.step(WINDOW_CYCLES)
        return {
            "hybrid_cost": hybrid_cost,
            "sim_cost": ref.timer.total_s,
            "hybrid_value": hybrid_value,
            "ref_value": ref.peek("timer", "value"),
            "trace_changes": changes,
            "transfer": orch.transfers[-1],
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["hybrid (fpga warm-up + transfer + sim trace)",
         format_si_time(r["hybrid_cost"]), r["trace_changes"]],
        ["simulator only", format_si_time(r["sim_cost"]), "same window"],
        ["transfer cost", format_si_time(r["transfer"].modelled_cost_s),
         f"{r['transfer'].bits} bits"],
    ]
    emit("multitarget", format_table(
        ["configuration", "modelled time", "trace"],
        rows, title="E5: multi-target fast-forward + traced window"))

    # The transferred state is exactly the state the slow run reaches.
    assert r["hybrid_value"] == r["ref_value"]
    # Fast-forwarding through the FPGA wins clearly. (The hybrid's cost
    # floor is the CRIU restore on the simulator side, ~20 ms, so the
    # ratio grows with warm-up length; at 200k cycles it is ~8x.)
    assert r["sim_cost"] / r["hybrid_cost"] > 5
    # The transfer itself is negligible next to the saved simulation.
    assert r["transfer"].modelled_cost_s < r["sim_cost"] / 100
    # The window produced a real trace.
    assert r["trace_changes"] > 10


def test_fpga_alone_has_no_trace(benchmark):
    def run():
        fpga = FpgaTarget(scan_mode="functional")
        fpga.add_peripheral(catalog.TIMER, PERIPH_BASE)
        fpga.reset()
        try:
            fpga.attach_vcd("timer")  # type: ignore[attr-defined]
            return "traced"
        except AttributeError:
            return "no-visibility"

    assert benchmark.pedantic(run, rounds=1, iterations=1) == "no-visibility"
