"""Bus functional models, memory map and transport tests."""

import pytest

from repro.bus import (JTAG, SHARED_MEMORY, USB3, Axi4LiteMaster,
                       MemoryMap, ModelledTimer, WishboneMaster)
from repro.errors import BusError
from repro.hdl import elaborate
from repro.sim import CompiledSimulation

# Minimal AXI4-Lite register file for BFM testing (4 registers).
AXI_REGFILE = r"""
module regfile (
    input wire clk, input wire rst,
    input wire s_axi_awvalid, output reg s_axi_awready,
    input wire [7:0] s_axi_awaddr,
    input wire s_axi_wvalid, output reg s_axi_wready,
    input wire [31:0] s_axi_wdata,
    output reg s_axi_bvalid, input wire s_axi_bready,
    input wire s_axi_arvalid, output reg s_axi_arready,
    input wire [7:0] s_axi_araddr,
    output reg s_axi_rvalid, input wire s_axi_rready,
    output reg [31:0] s_axi_rdata
);
    reg [31:0] regs [0:3];
    reg [7:0] awaddr_q;
    reg [31:0] wdata_q;
    reg aw_got, w_got;
    wire do_wr;
    assign do_wr = aw_got && w_got;
    always @(posedge clk) begin
        if (rst) begin
            s_axi_awready <= 1; s_axi_wready <= 1; s_axi_bvalid <= 0;
            aw_got <= 0; w_got <= 0;
        end else begin
            if (s_axi_awvalid && s_axi_awready) begin
                awaddr_q <= s_axi_awaddr; aw_got <= 1; s_axi_awready <= 0;
            end
            if (s_axi_wvalid && s_axi_wready) begin
                wdata_q <= s_axi_wdata; w_got <= 1; s_axi_wready <= 0;
            end
            if (do_wr) begin
                regs[awaddr_q[3:2]] <= wdata_q;
                aw_got <= 0; w_got <= 0; s_axi_bvalid <= 1;
            end
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 0; s_axi_awready <= 1; s_axi_wready <= 1;
            end
        end
    end
    always @(posedge clk) begin
        if (rst) begin
            s_axi_arready <= 1; s_axi_rvalid <= 0; s_axi_rdata <= 0;
        end else begin
            if (s_axi_arvalid && s_axi_arready) begin
                s_axi_arready <= 0; s_axi_rvalid <= 1;
                s_axi_rdata <= regs[s_axi_araddr[3:2]];
            end
            if (s_axi_rvalid && s_axi_rready) begin
                s_axi_rvalid <= 0; s_axi_arready <= 1;
            end
        end
    end
endmodule
"""

# Wishbone classic register file.
WB_REGFILE = r"""
module wbreg (
    input wire clk, input wire rst,
    input wire wb_cyc, input wire wb_stb, input wire wb_we,
    input wire [7:0] wb_adr, input wire [31:0] wb_dat_w,
    output reg wb_ack, output reg [31:0] wb_dat_r
);
    reg [31:0] regs [0:3];
    always @(posedge clk) begin
        if (rst) begin
            wb_ack <= 0;
        end else begin
            wb_ack <= 0;
            if (wb_cyc && wb_stb && !wb_ack) begin
                wb_ack <= 1;
                if (wb_we)
                    regs[wb_adr[3:2]] <= wb_dat_w;
                else
                    wb_dat_r <= regs[wb_adr[3:2]];
            end
        end
    end
endmodule
"""


@pytest.fixture
def axi_sim():
    sim = CompiledSimulation(elaborate(AXI_REGFILE, "regfile"))
    sim.poke("rst", 1); sim.step(2); sim.poke("rst", 0); sim.step()
    return sim


@pytest.fixture
def wb_sim():
    sim = CompiledSimulation(elaborate(WB_REGFILE, "wbreg"))
    sim.poke("rst", 1); sim.step(2); sim.poke("rst", 0); sim.step()
    return sim


class TestAxi4Lite:
    def test_write_read_roundtrip(self, axi_sim):
        bus = Axi4LiteMaster(axi_sim)
        for i in range(4):
            bus.write(i * 4, 0x1000 + i)
        for i in range(4):
            data, _ = bus.read(i * 4)
            assert data == 0x1000 + i

    def test_cycle_accounting(self, axi_sim):
        bus = Axi4LiteMaster(axi_sim)
        w = bus.write(0, 1)
        _, r = bus.read(0)
        assert w >= 2 and r >= 2
        assert bus.stats.writes == 1 and bus.stats.reads == 1
        assert bus.stats.total_cycles == w + r

    def test_back_to_back_writes(self, axi_sim):
        bus = Axi4LiteMaster(axi_sim)
        for i in range(10):
            bus.write(0, i)
        data, _ = bus.read(0)
        assert data == 9

    def test_timeout_on_dead_slave(self, axi_sim):
        bus = Axi4LiteMaster(axi_sim, timeout=4)
        axi_sim.poke("rst", 1)  # hold slave in reset: never ready? (aw/wready stay 1)
        axi_sim.step()
        # With rst held the response never comes (bvalid held at 0).
        with pytest.raises(BusError):
            bus.write(0, 1)


class TestWishbone:
    def test_write_read_roundtrip(self, wb_sim):
        bus = WishboneMaster(wb_sim)
        bus.write(0x4, 0xCAFE)
        data, _ = bus.read(0x4)
        assert data == 0xCAFE

    def test_ack_cycle_count(self, wb_sim):
        bus = WishboneMaster(wb_sim)
        cycles = bus.write(0, 7)
        assert 1 <= cycles <= 4

    def test_timeout(self, wb_sim):
        bus = WishboneMaster(wb_sim, timeout=3)
        wb_sim.poke("rst", 1)
        wb_sim.step()
        with pytest.raises(BusError):
            bus.read(0)


class TestMemoryMap:
    def test_resolution(self):
        mm = MemoryMap()
        mm.add("a", 0x1000, 0x100)
        mm.add("b", 0x2000, 0x100)
        region, offset = mm.resolve(0x1040)
        assert region.name == "a" and offset == 0x40
        assert mm.resolve(0x3000) is None

    def test_overlap_rejected(self):
        mm = MemoryMap()
        mm.add("a", 0x1000, 0x100)
        with pytest.raises(BusError):
            mm.add("b", 0x10FF, 0x10)

    def test_duplicate_name_rejected(self):
        mm = MemoryMap()
        mm.add("a", 0x1000, 0x100)
        with pytest.raises(BusError):
            mm.add("a", 0x2000, 0x100)

    def test_adjacent_regions_ok(self):
        mm = MemoryMap()
        mm.add("a", 0x1000, 0x100)
        mm.add("b", 0x1100, 0x100)
        assert mm.resolve(0x10FF)[0].name == "a"
        assert mm.resolve(0x1100)[0].name == "b"

    def test_bad_region_rejected(self):
        mm = MemoryMap()
        with pytest.raises(BusError):
            mm.add("z", 0x0, 0)

    def test_region_lookup_and_iter(self):
        mm = MemoryMap()
        mm.add("a", 0x1000, 0x100)
        assert mm.region("a").base == 0x1000
        with pytest.raises(BusError):
            mm.region("nope")
        assert len(mm) == 1 and list(mm)[0].name == "a"


class TestTransports:
    def test_latency_ordering(self):
        """The paper's I/O forwarding shape: shm < usb3 << jtag."""
        shm = SHARED_MEMORY.access_latency_s()
        usb = USB3.access_latency_s()
        jtag = JTAG.access_latency_s()
        assert shm < usb < jtag
        assert jtag / usb > 10

    def test_bulk_beats_per_word_for_large_payloads(self):
        bits = 100_000
        per_word = USB3.access_latency_s(bits // 32)
        bulk = USB3.bulk_latency_s(bits)
        assert bulk < per_word / 10

    def test_modelled_timer_accumulates(self):
        t = ModelledTimer()
        t.add_cycles(1000, 1e6)
        t.add_transport(0.5e-3)
        t.add_fixed(1e-3)
        assert abs(t.total_s - (1e-3 + 0.5e-3 + 1e-3)) < 1e-12
        assert t.cycles == 1000
        snap = t.snapshot()
        assert snap["transport_s"] == 0.5e-3
