"""Tests for repro.core.journal and the crash-safe campaign machinery:
record framing and torn-tail recovery, the content-addressed blob
layer, cooperative shutdown, and the headline invariant — a campaign
SIGKILL'd mid-run and resumed via ``repro resume`` reaches a verdict
byte-identical to the uninterrupted run, at any worker count, for both
DSE and fuzzing."""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.core import HardSnapSession, SnapshotFuzzer
from repro.core.journal import (FORMAT_VERSION, Journal, config_fingerprint,
                                read_frames)
from repro.core.shutdown import (graceful_shutdown, request_shutdown, reset,
                                 shutdown_requested)
from repro.core.store import FileBlobStore, blob_digest
from repro.errors import JournalCorruptError, JournalError, SnapshotError
from repro.firmware import TIMER_BASE, dispatcher, fuzz_packet_parser
from repro.isa import assemble
from repro.parallel import (ParallelAnalysisEngine, ParallelFuzzer,
                            SessionRecipe, WorkerPool)
from repro.parallel.pool import close_all_pools
from repro.peripherals import catalog
from repro.targets import FpgaTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 7])]
SEED_HEX = ["010441424344", "0207"]
FIRMWARE = dispatcher(5, work_cycles=8)
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"
CLI = [sys.executable, "-m", "repro.cli"]
PERIPHERAL = f"timer@0x{TIMER_BASE:08x}"


def _cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


class _Serial:
    """Uninterrupted serial reference verdicts, computed once."""

    _engine = None
    _fuzz = None

    @classmethod
    def engine(cls):
        if cls._engine is None:
            cls._engine = HardSnapSession(
                FIRMWARE, TIMER, searcher="bfs").run(
                max_instructions=100_000).verdict_summary()
        return cls._engine

    @classmethod
    def fuzz(cls):
        if cls._fuzz is None:
            target = FpgaTarget(scan_mode="functional")
            target.add_peripheral(catalog.TIMER, TIMER_BASE)
            fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()),
                                    target, seeds=SEEDS, seed=3)
            cls._fuzz = fuzzer.run(executions=96,
                                   batch_size=16).verdict_summary()
        return cls._fuzz


def _campaign_cmd(tmp_path, mode, workers, journal):
    fw = tmp_path / "fw.s"
    if mode == "dse":
        fw.write_text(FIRMWARE)
        return CLI + ["run", str(fw), "--peripheral", PERIPHERAL,
                      "--workers", str(workers), "--searcher", "bfs",
                      "--max-instructions", "100000",
                      "--journal", str(journal), "--checkpoint-every", "1"]
    fw.write_text(fuzz_packet_parser())
    cmd = CLI + ["fuzz", str(fw), "--peripheral", PERIPHERAL,
                 "--workers", str(workers), "-n", "96",
                 "--batch-size", "16", "--rng-seed", "3",
                 "--journal", str(journal), "--checkpoint-every", "1"]
    for s in SEED_HEX:
        cmd += ["--seed", s]
    return cmd


def _crash_campaign(tmp_path, mode, workers, kill_after):
    """Run a journaled CLI campaign that SIGKILLs itself after the
    *kill_after*-th journal append; returns the journal directory."""
    journal = tmp_path / "journal"
    err_path = tmp_path / "crash.err"
    # Output goes to files, not pipes: the coordinator's workers
    # inherit stdio, and a pipe would make this wait on *their* exit
    # (the orphan-poll grace period) instead of the SIGKILL itself.
    with open(tmp_path / "crash.out", "w") as out, \
            open(err_path, "w") as err:
        result = subprocess.run(
            _campaign_cmd(tmp_path, mode, workers, journal),
            env=_cli_env(REPRO_JOURNAL_KILL_AFTER=str(kill_after)),
            stdout=out, stderr=err, timeout=600)
    assert result.returncode == -signal.SIGKILL, (
        f"expected SIGKILL, got rc={result.returncode}\n"
        f"stderr: {err_path.read_text()[-2000:]}")
    assert (journal / "events.log").exists()
    return journal


# ---------------------------------------------------------------------------
# Framing, blobs, corruption
# ---------------------------------------------------------------------------

class TestFraming:
    def test_create_append_reopen_round_trip(self, tmp_path):
        with Journal.create(tmp_path / "j") as journal:
            journal.append("campaign-opened", mode="fuzz", blob="ab")
            journal.append("note", value=7)
        reopened = Journal.open(tmp_path / "j", readonly=True)
        kinds = [r["kind"] for r in reopened.records]
        assert kinds == ["journal-opened", "campaign-opened", "note"]
        assert reopened.records[0]["version"] == FORMAT_VERSION
        assert reopened.first("note")["value"] == 7
        assert reopened.recovery is None
        assert not reopened.sealed

    def test_create_refuses_existing(self, tmp_path):
        Journal.create(tmp_path / "j").close()
        with pytest.raises(JournalError, match="resume"):
            Journal.create(tmp_path / "j")

    def test_open_missing(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            Journal.open(tmp_path / "nope")

    def test_blob_round_trip_and_dedup(self, tmp_path):
        with Journal.create(tmp_path / "j") as journal:
            payload = {"frontier": [1, 2, 3], "rng": ("x", 4)}
            digest = journal.put_blob(payload)
            assert journal.put_blob(payload) == digest  # content address
            assert journal.get_blob(digest) == payload
        # one file per distinct body
        assert len(list((tmp_path / "j" / "blobs").iterdir())) == 1

    def test_corrupt_blob_detected(self, tmp_path):
        with Journal.create(tmp_path / "j") as journal:
            digest = journal.put_blob({"state": 1}, fsync=True)
            (tmp_path / "j" / "blobs" / digest).write_bytes(b"rotten")
            with pytest.raises(JournalCorruptError):
                journal.get_blob(digest)

    def test_missing_blob_raises(self, tmp_path):
        store = FileBlobStore(tmp_path / "b")
        with pytest.raises(SnapshotError):
            store.get(blob_digest(b"never stored"))

    def test_interior_corruption_names_offset(self, tmp_path):
        with Journal.create(tmp_path / "j") as journal:
            journal.append("a", i=1)
            journal.append("b", i=2)
        log = tmp_path / "j" / "events.log"
        data = bytearray(log.read_bytes())
        frames = list(read_frames(bytes(data)))
        # flip one payload byte of the middle record (records follow it,
        # so this is rot/tampering, not a torn tail)
        offset = frames[1][0]
        data[offset + 20 + 2] ^= 0xFF
        log.write_bytes(bytes(data))
        with pytest.raises(JournalCorruptError) as err:
            Journal.open(tmp_path / "j")
        assert err.value.offset == offset
        assert str(offset) in str(err.value)

    def test_unsupported_version_rejected(self, tmp_path):
        with Journal.create(tmp_path / "j") as journal:
            pass
        # rewrite the log with a bumped version record
        other = tmp_path / "k"
        other.mkdir()
        import json as _json
        payload = _json.dumps(
            {"seq": 1, "kind": "journal-opened", "version": 99},
            sort_keys=True, separators=(",", ":")).encode()
        import hashlib as _hashlib
        frame = (len(payload).to_bytes(4, "little")
                 + _hashlib.blake2b(payload, digest_size=16).digest()
                 + payload)
        (other / "events.log").write_bytes(frame)
        with pytest.raises(JournalError, match="format"):
            Journal.open(other)

    def test_config_fingerprint_stable(self):
        class Cfg:
            def __repr__(self):
                return "Cfg(x=1)"
        assert config_fingerprint(Cfg()) == config_fingerprint(Cfg())
        assert len(config_fingerprint(Cfg())) == 16


class TestTornTail:
    def _make_journal(self, directory):
        with Journal.create(directory) as journal:
            journal.append("campaign-opened", mode="fuzz", blob="cd" * 16)
            journal.append("fuzz-shard-completed", worker=0, base=0,
                           count=16, blob="ef" * 16)
            journal.append("checkpoint", done=16, blob="01" * 16)
        return (directory / "events.log").read_bytes()

    def test_truncation_at_every_byte_of_final_record(self, tmp_path):
        """The crash-during-append shape: the log ends mid-record. Every
        possible cut point inside the final record must recover to the
        last intact record — detected, truncated, never silent."""
        data = self._make_journal(tmp_path / "src")
        frames = list(read_frames(data))
        last_offset = frames[-1][0]
        intact_kinds = ["journal-opened", "campaign-opened",
                        "fuzz-shard-completed"]
        for cut in range(last_offset + 1, len(data)):
            torn_dir = tmp_path / f"cut{cut}"
            torn_dir.mkdir()
            (torn_dir / "events.log").write_bytes(data[:cut])
            journal = Journal.open(torn_dir)
            assert journal.recovery == {"truncated_at": last_offset,
                                        "dropped": cut - last_offset}, cut
            assert [r["kind"] for r in journal.records[:3]] == intact_kinds
            # the repair itself is on the record
            assert journal.records[-1]["kind"] == "tail-recovered"
            journal.close()
            # a second open sees a clean, truncated log
            again = Journal.open(torn_dir, readonly=True)
            assert again.recovery is None
            assert (torn_dir / "events.log").stat().st_size < len(data)

    def test_damaged_final_record_is_torn_tail(self, tmp_path):
        """A checksum-failing *final* record is indistinguishable from a
        torn write and recovers the same way."""
        data = bytearray(self._make_journal(tmp_path / "src"))
        frames = list(read_frames(bytes(data)))
        last_offset = frames[-1][0]
        data[-1] ^= 0xFF
        torn_dir = tmp_path / "torn"
        torn_dir.mkdir()
        (torn_dir / "events.log").write_bytes(bytes(data))
        journal = Journal.open(torn_dir)
        assert journal.recovery["truncated_at"] == last_offset
        journal.close()

    def test_readonly_open_never_repairs(self, tmp_path):
        data = self._make_journal(tmp_path / "src")
        torn_dir = tmp_path / "torn"
        torn_dir.mkdir()
        (torn_dir / "events.log").write_bytes(data[:-3])
        journal = Journal.open(torn_dir, readonly=True)
        assert journal.recovery is not None
        # the file on disk is untouched
        assert (torn_dir / "events.log").read_bytes() == data[:-3]


# ---------------------------------------------------------------------------
# Cooperative shutdown + pool lifecycle
# ---------------------------------------------------------------------------

class TestShutdown:
    @pytest.fixture(autouse=True)
    def _clean_flag(self):
        reset()
        yield
        reset()

    def test_request_and_reset(self):
        assert not shutdown_requested()
        request_shutdown()
        assert shutdown_requested()
        reset()
        assert not shutdown_requested()

    def test_graceful_shutdown_first_signal_is_cooperative(self):
        with graceful_shutdown():
            os.kill(os.getpid(), signal.SIGINT)  # no KeyboardInterrupt
            assert shutdown_requested()
        assert not shutdown_requested()  # context exit resets

    def test_graceful_shutdown_restores_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_shutdown():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_serial_fuzzer_interrupts_at_batch_boundary(self):
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()),
                                target, seeds=SEEDS, seed=3)
        request_shutdown()
        report = fuzzer.run(executions=64, batch_size=16)
        assert report.stop_reason == "interrupted"
        assert report.executions == 0

    def test_serial_engine_interrupts_at_schedule_point(self):
        session = HardSnapSession(FIRMWARE, TIMER, searcher="bfs")
        request_shutdown()
        report = session.run(max_instructions=100_000)
        assert report.stop_reason == "interrupted"

    def test_close_all_pools_reaps_live_pools(self):
        recipe = SessionRecipe.create(FIRMWARE, TIMER)
        pool = WorkerPool(recipe, 2)
        close_all_pools()
        # idempotent once reaped
        pool.close()
        assert pool.in_flight_payloads() == []


# ---------------------------------------------------------------------------
# Journaled campaigns: identity, resume, replay
# ---------------------------------------------------------------------------

class TestJournaledRuns:
    def test_fuzz_journaled_verdict_identical(self, tmp_path):
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                            workers=2, batch_size=16, seed=3,
                            journal=tmp_path / "j",
                            checkpoint_every=2) as fuzzer:
            report = fuzzer.run(executions=96)
        assert report.verdict_summary() == _Serial.fuzz()
        journal = Journal.open(tmp_path / "j", readonly=True)
        assert journal.sealed
        assert journal.last("campaign-sealed")["verdict"] == _Serial.fuzz()
        assert journal.events("fuzz-shard-completed")
        assert journal.events("checkpoint")

    def test_fuzz_sealed_resume_is_idempotent(self, tmp_path):
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                            workers=2, batch_size=16, seed=3,
                            journal=tmp_path / "j") as fuzzer:
            fuzzer.run(executions=96)
        with ParallelFuzzer.resume(tmp_path / "j") as resumed:
            report = resumed.resume_run()
        assert report.verdict_summary() == _Serial.fuzz()

    def test_dse_journaled_verdict_identical(self, tmp_path):
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    searcher="bfs",
                                    journal=tmp_path / "j",
                                    checkpoint_every=2) as engine:
            report = engine.run(max_instructions=100_000)
        assert report.verdict_summary() == _Serial.engine()
        journal = Journal.open(tmp_path / "j", readonly=True)
        assert journal.sealed
        assert journal.last("campaign-sealed")["verdict"] == _Serial.engine()
        assert journal.events("lease-issued")
        assert journal.events("envelope-merged")
        assert journal.events("checkpoint")

    def test_dse_sealed_resume_is_idempotent(self, tmp_path):
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    searcher="bfs",
                                    journal=tmp_path / "j") as engine:
            engine.run(max_instructions=100_000)
        with ParallelAnalysisEngine.resume(tmp_path / "j") as resumed:
            report = resumed.resume_run()
        assert report.verdict_summary() == _Serial.engine()

    def test_resume_rejects_wrong_mode(self, tmp_path):
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                            workers=2, batch_size=16, seed=3,
                            journal=tmp_path / "j") as fuzzer:
            fuzzer.run(executions=32)
        with pytest.raises(JournalError, match="campaign"):
            ParallelAnalysisEngine.resume(tmp_path / "j")

    def test_corrupt_checkpoint_falls_back_not_silently(self, tmp_path):
        """A rotten newest checkpoint blob must not sink the campaign:
        resume steps back to the previous checkpoint, re-applies the
        shard suffix, reaches the identical verdict — and writes a
        ``checkpoint-skipped`` event naming the blob it abandoned."""
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                            workers=2, batch_size=16, seed=3,
                            journal=tmp_path / "j",
                            checkpoint_every=2) as fuzzer:
            fuzzer.run(executions=96)
        journal = Journal.open(tmp_path / "j", readonly=True)
        newest = journal.events("checkpoint")[-1]["blob"]
        (tmp_path / "j" / "blobs" / newest).write_bytes(b"bit rot")
        with ParallelFuzzer.resume(tmp_path / "j") as resumed:
            report = resumed.resume_run()
        assert report.verdict_summary() == _Serial.fuzz()
        reopened = Journal.open(tmp_path / "j", readonly=True)
        skipped = reopened.events("checkpoint-skipped")
        assert skipped and skipped[0]["blob"] == newest


# ---------------------------------------------------------------------------
# The headline invariant: SIGKILL mid-campaign, resume, identical verdict
# ---------------------------------------------------------------------------

class TestCrashResume:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_dse_sigkill_resume_identical(self, tmp_path, workers):
        journal = _crash_campaign(tmp_path, "dse", workers, kill_after=14)
        assert not Journal.open(journal, readonly=True).sealed
        with ParallelAnalysisEngine.resume(journal,
                                           workers=workers) as engine:
            report = engine.resume_run()
        assert report.verdict_summary() == _Serial.engine()
        assert Journal.open(journal, readonly=True).sealed

    @pytest.mark.parametrize("workers", [2, 4])
    def test_fuzz_sigkill_resume_identical(self, tmp_path, workers):
        journal = _crash_campaign(tmp_path, "fuzz", workers, kill_after=10)
        assert not Journal.open(journal, readonly=True).sealed
        with ParallelFuzzer.resume(journal, workers=workers) as fuzzer:
            report = fuzzer.resume_run()
        assert report.verdict_summary() == _Serial.fuzz()
        assert Journal.open(journal, readonly=True).sealed

    def test_cli_resume_and_replay_round_trip(self, tmp_path):
        """The CLI surface end to end: crash → ``repro resume`` seals
        the campaign → ``repro replay`` re-executes it from the recipe
        and confirms the sealed verdict."""
        journal = _crash_campaign(tmp_path, "fuzz", 2, kill_after=10)
        resumed = subprocess.run(
            CLI + ["resume", str(journal)], env=_cli_env(),
            capture_output=True, text=True, timeout=600)
        # rc 1 = crashes found (normal fuzz semantics), 0 = none
        assert resumed.returncode in (0, 1), resumed.stderr[-2000:]
        assert Journal.open(journal, readonly=True).sealed
        replayed = subprocess.run(
            CLI + ["replay", str(journal)], env=_cli_env(),
            capture_output=True, text=True, timeout=600)
        assert replayed.returncode in (0, 1), replayed.stderr[-2000:]
        assert "verdict matches the sealed campaign verdict" \
            in replayed.stdout

    def test_journal_chaos_cell(self, tmp_path):
        """One CI journal-chaos cell: the crash point and worker count
        come from the environment (defaults make it a plain local
        test). The seed picks both the campaign mode and how deep into
        the journal the SIGKILL lands."""
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "1"))
        workers = int(os.environ.get("REPRO_CHAOS_WORKERS", "2"))
        mode = "dse" if seed % 2 else "fuzz"
        kill_after = 6 + (seed % 7)
        journal = _crash_campaign(tmp_path, mode, workers, kill_after)
        if mode == "dse":
            with ParallelAnalysisEngine.resume(journal,
                                               workers=workers) as engine:
                verdict = engine.resume_run().verdict_summary()
            assert verdict == _Serial.engine()
        else:
            with ParallelFuzzer.resume(journal, workers=workers) as fuzzer:
                verdict = fuzzer.resume_run().verdict_summary()
            assert verdict == _Serial.fuzz()


# ---------------------------------------------------------------------------
# Graceful SIGTERM: seal, drain, no shm leak
# ---------------------------------------------------------------------------

def _shm_segments():
    shm = pathlib.Path("/dev/shm")
    if not shm.exists():
        return set()
    return {p.name for p in shm.glob("rpr-*")}


class TestGracefulSignal:
    def test_sigterm_seals_checkpoint_and_unlinks_shm(self, tmp_path):
        before = _shm_segments()
        journal = tmp_path / "journal"
        # A campaign far too long to finish: we interrupt it.
        fw = tmp_path / "fw.s"
        fw.write_text(fuzz_packet_parser())
        cmd = CLI + ["fuzz", str(fw), "--peripheral", PERIPHERAL,
                     "--workers", "2", "-n", "500000",
                     "--batch-size", "16", "--rng-seed", "3",
                     "--journal", str(journal)]
        for s in SEED_HEX:
            cmd += ["--seed", s]
        proc = subprocess.Popen(cmd, env=_cli_env(),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
        try:
            log = journal / "events.log"
            deadline = time.time() + 120
            while time.time() < deadline:
                if log.exists() and log.stat().st_size > 400:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("campaign never started journaling")
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, stderr[-2000:]
        reopened = Journal.open(journal, readonly=True)
        assert reopened.events("campaign-interrupted")
        assert not reopened.sealed
        assert reopened.events("checkpoint")  # final checkpoint sealed
        assert _shm_segments() <= before  # every segment unlinked
        # the interrupted campaign is resumable
        with ParallelFuzzer.resume(journal) as fuzzer:
            assert fuzzer._resume_executions == 500_000
