"""E7 — fuzzing throughput: snapshot restore vs device reboot.

The paper's §II motivation, measured: "fuzzing embedded systems requires
to restart the target under test after each fuzzing input... a complete
reboot of the device which is extremely slow" (citing Muench et al.).

The same coverage-guided fuzzer (same seeds, same mutation stream) runs
against the packet-parser firmware + RTL timer with two reset backends:
HardSnap's snapshot restore vs a full reboot per input.

Expected shapes: identical exploration (edges, crashes) but executions
per modelled second differ by orders of magnitude; the planted
signed-length bug is found either way.
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import SnapshotFuzzer
from repro.firmware import TIMER_BASE, fuzz_packet_parser
from repro.isa import assemble
from repro.peripherals import catalog
from repro.targets import FpgaTarget

SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 7])]
EXECUTIONS = 300


def _fuzz(reset):
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, reset=reset, seed=3)
    return fuzzer.run(executions=EXECUTIONS)


def test_fuzzing_throughput(benchmark):
    results = benchmark.pedantic(
        lambda: {mode: _fuzz(mode) for mode in ("snapshot", "reboot")},
        rounds=1, iterations=1)

    rows = []
    for mode, r in results.items():
        rows.append([
            mode, r.executions, len(r.crashes), r.edges_covered,
            format_si_time(r.modelled_time_s),
            f"{r.execs_per_modelled_second:.0f}",
        ])
    snap, reboot = results["snapshot"], results["reboot"]
    rows.append(["speedup", "", "", "",
                 f"{reboot.modelled_time_s / snap.modelled_time_s:.0f}x",
                 ""])
    emit("fuzzing_throughput", format_table(
        ["reset mode", "executions", "crashes", "edges", "modelled time",
         "exec/s (modelled)"],
        rows, title="E7: fuzzing with snapshot restore vs reboot per input"))

    # Identical exploration...
    assert snap.edges_covered == reboot.edges_covered
    assert len(snap.crashes) == len(reboot.crashes)
    # ...the planted bug found...
    assert snap.crashes and snap.crashes[0].input_bytes[1] >= 0x80
    # ...and the snapshot path is orders of magnitude faster.
    assert reboot.modelled_time_s / snap.modelled_time_s > 100
