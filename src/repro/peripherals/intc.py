"""8-line interrupt controller.

Aggregates level-sensitive interrupt requests from other peripherals into
one CPU interrupt, with masking, software-pend and claim registers —
the glue that lets multi-peripheral systems route IRQs to the VM.

Register map:

====== ========= ====================================================
0x00   ENABLE    per-line enable mask
0x04   PENDING   latched pending lines (write-1-to-clear)
0x08   CLAIM     read: lowest pending+enabled line number (0xFF none);
                 the read also clears that line (claim semantics)
0x0C   SWPEND    write-1-to-set pending bits (software interrupts)
====== ========= ====================================================
"""

from __future__ import annotations

from repro.peripherals.axi_skeleton import axi_module

NAME = "intc"
ADDR_BITS = 8
IRQ = True

REGISTERS = {
    "ENABLE": 0x00,
    "PENDING": 0x04,
    "CLAIM": 0x08,
    "SWPEND": 0x0C,
}

_CORE = """
    reg [7:0] enable;
    reg [7:0] pending;
    reg [7:0] lines_sync;

    wire [7:0] active;
    assign active = pending & enable;

    // Priority encoder: lowest active line wins.
    reg [7:0] claim_id;
    always @(*) begin
        if (active[0]) claim_id = 8'd0;
        else if (active[1]) claim_id = 8'd1;
        else if (active[2]) claim_id = 8'd2;
        else if (active[3]) claim_id = 8'd3;
        else if (active[4]) claim_id = 8'd4;
        else if (active[5]) claim_id = 8'd5;
        else if (active[6]) claim_id = 8'd6;
        else if (active[7]) claim_id = 8'd7;
        else claim_id = 8'hFF;
    end

    wire claim_rd;
    assign claim_rd = bus_rd && (bus_raddr == 8'h08);

    always @(posedge clk) begin
        if (rst) begin
            enable <= 0;
            pending <= 0;
            lines_sync <= 0;
        end else begin
            lines_sync <= lines;
            pending <= pending | lines_sync;
            if (claim_rd && (claim_id != 8'hFF))
                pending[claim_id[2:0]] <= 1'b0;
            if (bus_wr) begin
                case (bus_waddr)
                    8'h00: enable <= bus_wdata[7:0];
                    8'h04: pending <= pending & ~bus_wdata[7:0];
                    8'h0C: pending <= pending | bus_wdata[7:0];
                    default: begin end
                endcase
            end
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        case (bus_raddr)
            8'h00: rd_data = {24'h0, enable};
            8'h04: rd_data = {24'h0, pending};
            8'h08: rd_data = {24'h0, claim_id};
            default: rd_data = 32'h0;
        endcase
    end

    assign irq = |active;
"""


def verilog() -> str:
    return axi_module(NAME, _CORE, ADDR_BITS, extra_ports=(
        "input wire [7:0] lines",
        "output wire irq",
    ))
