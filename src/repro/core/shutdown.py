"""Cooperative SIGINT/SIGTERM shutdown for long campaigns.

Until this module, nothing in ``src/repro`` handled signals at all: a
Ctrl-C or a supervisor's SIGTERM unwound the coordinator mid-lease,
leaking ``/dev/shm`` ``rpr-*`` slab segments and worker processes, and
— for journaled campaigns — losing everything since the last record.

The contract is *cooperative*: the first signal only raises a flag.
Every long-running loop (the serial engine and fuzzer, both parallel
coordinators) polls :func:`shutdown_requested` at its scheduling point
and winds down cleanly — drains in-flight work, seals a final journal
checkpoint when journaling, closes the pool (which unlinks every shm
segment carrying the run tag) and reports ``stop="interrupted"``. A
*second* signal means "stop cooperating": live worker pools are closed
escalatingly (STOP → terminate → kill → shm sweep) and
``KeyboardInterrupt`` is raised so ``with`` blocks and ``finally``
clauses still run on the way out.

Handlers are installed by the CLI via :func:`graceful_shutdown`;
library callers embedding the coordinators can install their own and
simply call :func:`request_shutdown`.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator


class _State:
    def __init__(self) -> None:
        self.requested = False
        self.signals = 0


_STATE = _State()


def shutdown_requested() -> bool:
    """True once a shutdown signal (or an explicit request) arrived;
    polled by every campaign loop at its scheduling point."""
    return _STATE.requested


def request_shutdown() -> None:
    """Raise the cooperative shutdown flag programmatically."""
    _STATE.requested = True


def reset() -> None:
    """Clear the flag (a new CLI invocation / test starts clean)."""
    _STATE.requested = False
    _STATE.signals = 0


def _handle(signum, frame) -> None:
    _STATE.signals += 1
    _STATE.requested = True
    if _STATE.signals >= 2:
        # Second signal: the user means it. Reap pools (shm unlink,
        # child reaping) and unwind through finally/with blocks.
        from repro.parallel.pool import close_all_pools
        close_all_pools(timeout=2.0)
        raise KeyboardInterrupt(
            f"second shutdown signal ({signal.Signals(signum).name})")


@contextlib.contextmanager
def graceful_shutdown() -> Iterator[_State]:
    """Install SIGINT/SIGTERM handlers for the duration of a campaign.

    First signal → cooperative flag (campaigns checkpoint and drain);
    second → pools closed and ``KeyboardInterrupt``. Restores previous
    handlers on exit; a no-op off the main thread (where Python forbids
    ``signal.signal``) and on platforms without the signals.
    """
    previous = {}
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[sig] = signal.signal(sig, _handle)
            except (ValueError, OSError, AttributeError):
                pass
    try:
        yield _STATE
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
        reset()
