"""HardSnap core: Algorithm 1, the snapshot controller, the consistency
strategies (HardSnap + the two naive baselines) and the session facade."""

from repro.core.config import SessionConfig
from repro.core.fuzzer import (INPUT_ADDR, FuzzCrash, FuzzReport,
                               SnapshotFuzzer)
from repro.core.engine import (AnalysisEngine, AnalysisReport, CompletedPath,
                               ConsistencyStrategy, RebootReplayStrategy,
                               SharedHardwareStrategy, SnapshotStrategy)
from repro.core.hardsnap import (HardSnapSession, make_strategy, make_target,
                                 run_all_strategies)
from repro.core.persistence import (export_crash_pack, load_snapshot,
                                    replay_crash, save_snapshot)
from repro.core.snapshot import SnapshotController, SnapshotStats
from repro.core.store import (Chunk, SnapshotRecord, SnapshotStore,
                              StoreStats, chunk_digest)

__all__ = [
    "HardSnapSession", "SessionConfig", "AnalysisEngine", "AnalysisReport",
    "CompletedPath", "ConsistencyStrategy", "SnapshotStrategy",
    "RebootReplayStrategy", "SharedHardwareStrategy", "SnapshotController",
    "SnapshotStats", "make_strategy", "make_target", "run_all_strategies",
    "SnapshotFuzzer", "FuzzReport", "FuzzCrash", "INPUT_ADDR",
    "save_snapshot", "load_snapshot", "export_crash_pack", "replay_crash",
    "SnapshotStore", "SnapshotRecord", "StoreStats", "Chunk", "chunk_digest",
]
