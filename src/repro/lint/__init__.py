"""`repro.lint` — RTL lint and snapshot-consistency static analysis.

A rule-based static analyzer over the elaborated
:class:`~repro.hdl.ir.Design`. Structural rules catch classic RTL defects
(combinational loops, multiple drivers, latch inference, truncation, dead
logic, unresettable state); HardSnap-specific rules statically prove the
paper's consistency guarantee — that every inferred state element (S_hw)
is covered by the scan chain or the readback path.

Entry points:

* :func:`~repro.lint.runner.lint_design` / :func:`lint_source` /
  :func:`lint_catalog` — run all rules, return a
  :class:`~repro.lint.framework.LintReport`,
* ``repro lint`` — the CLI front end (text and JSON renderers),
* the scan-chain pass runs the analyzer as a pre-flight check (see
  :func:`repro.instrument.scan_chain.insert_scan_chain`).
"""

from repro.lint.framework import (ERROR, INFO, WARNING, Diagnostic,
                                  LintConfig, LintReport, Rule, all_rules,
                                  render_json, rule)
from repro.lint.runner import lint_catalog, lint_design, lint_source

__all__ = [
    "Diagnostic", "LintConfig", "LintReport", "Rule",
    "ERROR", "WARNING", "INFO",
    "all_rules", "rule", "render_json",
    "lint_design", "lint_source", "lint_catalog",
]
