"""Bitvector expression DAG used throughout the symbolic virtual machine.

Expressions are immutable and hash-consed: structurally identical
expressions are the same Python object, which makes equality checks O(1)
and lets the solver cache per-node results. Constructors perform constant
folding and a handful of cheap local simplifications; the heavier rewrite
rules live in :mod:`repro.solver.simplify`.

The expression language is the quantifier-free bitvector fragment that an
ISA-level symbolic executor needs: arithmetic, bitwise logic, shifts,
concatenation/extraction, zero/sign extension, unsigned/signed comparisons
and if-then-else. Boolean values are 1-bit vectors, as in KLEE.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import SolverError

# Operation mnemonics. Kept as interned strings: cheap to compare, easy to
# read in reprs and debug dumps.
CONST = "const"
VAR = "var"
ADD = "add"
SUB = "sub"
MUL = "mul"
UDIV = "udiv"
UREM = "urem"
AND = "and"
OR = "or"
XOR = "xor"
NOT = "not"
NEG = "neg"
SHL = "shl"
LSHR = "lshr"
ASHR = "ashr"
CONCAT = "concat"
EXTRACT = "extract"
ZEXT = "zext"
SEXT = "sext"
EQ = "eq"
ULT = "ult"
ULE = "ule"
SLT = "slt"
SLE = "sle"
ITE = "ite"

_BINARY_ARITH = frozenset({ADD, SUB, MUL, UDIV, UREM, AND, OR, XOR, SHL, LSHR, ASHR})
_COMPARISONS = frozenset({EQ, ULT, ULE, SLT, SLE})


def _mask(width: int) -> int:
    return (1 << width) - 1


def _to_signed(value: int, width: int) -> int:
    """Interpret *value* (an unsigned ``width``-bit integer) as two's complement."""
    sign_bit = 1 << (width - 1)
    return (value & _mask(width)) - ((value & sign_bit) << 1)


class BitVec:
    """A node in the hash-consed bitvector expression DAG.

    Do not call the constructor directly; use the module-level builder
    functions (:func:`const`, :func:`var`, :func:`add`, ...) or the
    operator overloads, which intern nodes and fold constants.
    """

    __slots__ = ("op", "width", "args", "value", "name", "_hash", "_vars")

    _interned: Dict[tuple, "BitVec"] = {}

    def __init__(self, op: str, width: int, args: Tuple["BitVec", ...] = (),
                 value: Optional[int] = None, name: Optional[str] = None):
        self.op = op
        self.width = width
        self.args = args
        self.value = value
        self.name = name
        self._hash = hash((op, width, args, value, name))
        self._vars: Optional[frozenset] = None

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Hash-consing makes identity the same as structural equality.
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    def __reduce__(self):
        # Rebuild through the interning table: identity-as-equality must
        # survive a process boundary (the parallel runtime pickles
        # states whose constraints share subexpressions), and interning
        # also restores ``_hash`` before the node can be used as a key.
        return (_intern, (self.op, self.width, self.args, self.value,
                          self.name))

    # -- introspection ----------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.op == CONST

    @property
    def is_var(self) -> bool:
        return self.op == VAR

    @property
    def is_bool(self) -> bool:
        return self.width == 1

    def variables(self) -> frozenset:
        """Return the set of variable nodes reachable from this node."""
        if self._vars is None:
            if self.op == VAR:
                self._vars = frozenset((self,))
            elif self.op == CONST:
                self._vars = frozenset()
            else:
                acc: frozenset = frozenset()
                for arg in self.args:
                    acc |= arg.variables()
                self._vars = acc
        return self._vars

    def size(self) -> int:
        """Number of distinct DAG nodes reachable from this node."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.args)
        return len(seen)

    def walk(self) -> Iterator["BitVec"]:
        """Iterate over all distinct nodes (post-order not guaranteed)."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.args)

    # -- evaluation --------------------------------------------------------

    def evaluate(self, assignment: Mapping["BitVec", int]) -> int:
        """Concretely evaluate under *assignment* (variable node -> int).

        Raises :class:`SolverError` if a variable is unassigned.
        """
        cache: Dict[int, int] = {}
        # Iterative post-order evaluation: expression DAGs from long
        # symbolic executions can be deep enough to blow the stack.
        stack = [(self, False)]
        while stack:
            node, ready = stack.pop()
            if id(node) in cache:
                continue
            if node.op == CONST:
                cache[id(node)] = node.value  # type: ignore[assignment]
                continue
            if node.op == VAR:
                if node not in assignment:
                    raise SolverError(f"unassigned variable {node.name!r} in evaluate()")
                cache[id(node)] = assignment[node] & _mask(node.width)
                continue
            if not ready:
                stack.append((node, True))
                for arg in node.args:
                    stack.append((arg, False))
                continue
            vals = [cache[id(a)] for a in node.args]
            cache[id(node)] = _eval_op(node, vals)
        return cache[id(self)]

    # -- display -----------------------------------------------------------

    def __repr__(self) -> str:
        if self.op == CONST:
            return f"0x{self.value:x}:{self.width}"
        if self.op == VAR:
            return f"{self.name}:{self.width}"
        if self.op == EXTRACT:
            hi = self.value >> 16  # type: ignore[operator]
            lo = self.value & 0xFFFF  # type: ignore[operator]
            return f"extract[{hi}:{lo}]({self.args[0]!r})"
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.op}({inner})"

    # -- operator overloads (unsigned semantics by default) ----------------

    def __add__(self, other): return add(self, _coerce(other, self.width))
    def __sub__(self, other): return sub(self, _coerce(other, self.width))
    def __mul__(self, other): return mul(self, _coerce(other, self.width))
    def __and__(self, other): return and_(self, _coerce(other, self.width))
    def __or__(self, other): return or_(self, _coerce(other, self.width))
    def __xor__(self, other): return xor(self, _coerce(other, self.width))
    def __lshift__(self, other): return shl(self, _coerce(other, self.width))
    def __rshift__(self, other): return lshr(self, _coerce(other, self.width))
    def __invert__(self): return not_(self)
    def __neg__(self): return neg(self)


def _coerce(value, width: int) -> BitVec:
    if isinstance(value, BitVec):
        return value
    if isinstance(value, int):
        return const(value, width)
    raise SolverError(f"cannot coerce {value!r} to a bitvector")


def _eval_op(node: BitVec, vals) -> int:
    op, width = node.op, node.width
    if op == ADD:
        return (vals[0] + vals[1]) & _mask(width)
    if op == SUB:
        return (vals[0] - vals[1]) & _mask(width)
    if op == MUL:
        return (vals[0] * vals[1]) & _mask(width)
    if op == UDIV:
        return _mask(width) if vals[1] == 0 else (vals[0] // vals[1]) & _mask(width)
    if op == UREM:
        return vals[0] if vals[1] == 0 else (vals[0] % vals[1]) & _mask(width)
    if op == AND:
        return vals[0] & vals[1]
    if op == OR:
        return vals[0] | vals[1]
    if op == XOR:
        return vals[0] ^ vals[1]
    if op == NOT:
        return ~vals[0] & _mask(width)
    if op == NEG:
        return (-vals[0]) & _mask(width)
    if op == SHL:
        aw = node.args[0].width
        return 0 if vals[1] >= aw else (vals[0] << vals[1]) & _mask(width)
    if op == LSHR:
        aw = node.args[0].width
        return 0 if vals[1] >= aw else vals[0] >> vals[1]
    if op == ASHR:
        aw = node.args[0].width
        shift = min(vals[1], aw - 1) if vals[1] >= aw else vals[1]
        return (_to_signed(vals[0], aw) >> shift) & _mask(width)
    if op == CONCAT:
        acc = 0
        for arg, val in zip(node.args, vals):
            acc = (acc << arg.width) | val
        return acc
    if op == EXTRACT:
        lo = node.value & 0xFFFF  # type: ignore[operator]
        return (vals[0] >> lo) & _mask(width)
    if op == ZEXT:
        return vals[0]
    if op == SEXT:
        return _to_signed(vals[0], node.args[0].width) & _mask(width)
    if op == EQ:
        return int(vals[0] == vals[1])
    if op == ULT:
        return int(vals[0] < vals[1])
    if op == ULE:
        return int(vals[0] <= vals[1])
    if op == SLT:
        aw = node.args[0].width
        return int(_to_signed(vals[0], aw) < _to_signed(vals[1], aw))
    if op == SLE:
        aw = node.args[0].width
        return int(_to_signed(vals[0], aw) <= _to_signed(vals[1], aw))
    if op == ITE:
        return vals[1] if vals[0] else vals[2]
    raise SolverError(f"unknown op {op!r}")


def _intern(op: str, width: int, args: Tuple[BitVec, ...] = (),
            value: Optional[int] = None, name: Optional[str] = None) -> BitVec:
    key = (op, width, args, value, name)
    node = BitVec._interned.get(key)
    if node is None:
        node = BitVec(op, width, args, value, name)
        BitVec._interned[key] = node
    return node


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def const(value: int, width: int) -> BitVec:
    """A constant bitvector; *value* is truncated to *width* bits."""
    if width <= 0:
        raise SolverError(f"invalid width {width}")
    return _intern(CONST, width, value=value & _mask(width))


def var(name: str, width: int) -> BitVec:
    """A free variable. Variables are identified by (name, width)."""
    if width <= 0:
        raise SolverError(f"invalid width {width}")
    return _intern(VAR, width, name=name)


def true() -> BitVec:
    return const(1, 1)


def false() -> BitVec:
    return const(0, 1)


def _check_same_width(a: BitVec, b: BitVec, op: str) -> None:
    if a.width != b.width:
        raise SolverError(f"{op}: width mismatch {a.width} vs {b.width}")


def _binop(op: str, a: BitVec, b: BitVec) -> BitVec:
    _check_same_width(a, b, op)
    if a.is_const and b.is_const:
        node = BitVec(op, a.width, (a, b))
        return const(_eval_op(node, [a.value, b.value]), a.width)
    return _intern(op, a.width, (a, b))


def add(a: BitVec, b: BitVec) -> BitVec:
    if b.is_const and b.value == 0:
        return a
    if a.is_const and a.value == 0:
        return b
    return _binop(ADD, a, b)


def sub(a: BitVec, b: BitVec) -> BitVec:
    if b.is_const and b.value == 0:
        return a
    if a is b:
        return const(0, a.width)
    return _binop(SUB, a, b)


def mul(a: BitVec, b: BitVec) -> BitVec:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return const(0, a.width)
            if x.value == 1:
                return y
    return _binop(MUL, a, b)


def udiv(a: BitVec, b: BitVec) -> BitVec:
    if b.is_const and b.value == 1:
        return a
    return _binop(UDIV, a, b)


def urem(a: BitVec, b: BitVec) -> BitVec:
    if b.is_const and b.value == 1:
        return const(0, a.width)
    return _binop(UREM, a, b)


def and_(a: BitVec, b: BitVec) -> BitVec:
    if a is b:
        return a
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return const(0, a.width)
            if x.value == _mask(a.width):
                return y
    return _binop(AND, a, b)


def or_(a: BitVec, b: BitVec) -> BitVec:
    if a is b:
        return a
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return y
            if x.value == _mask(a.width):
                return const(_mask(a.width), a.width)
    return _binop(OR, a, b)


def xor(a: BitVec, b: BitVec) -> BitVec:
    if a is b:
        return const(0, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.value == 0:
            return y
    return _binop(XOR, a, b)


def not_(a: BitVec) -> BitVec:
    if a.is_const:
        return const(~a.value & _mask(a.width), a.width)
    if a.op == NOT:
        return a.args[0]
    return _intern(NOT, a.width, (a,))


def neg(a: BitVec) -> BitVec:
    if a.is_const:
        return const(-a.value & _mask(a.width), a.width)
    return _intern(NEG, a.width, (a,))


def shl(a: BitVec, b: BitVec) -> BitVec:
    if b.is_const and b.value == 0:
        return a
    return _binop(SHL, a, b)


def lshr(a: BitVec, b: BitVec) -> BitVec:
    if b.is_const and b.value == 0:
        return a
    return _binop(LSHR, a, b)


def ashr(a: BitVec, b: BitVec) -> BitVec:
    if b.is_const and b.value == 0:
        return a
    return _binop(ASHR, a, b)


def concat(*parts: BitVec) -> BitVec:
    """Concatenate bitvectors, first argument becomes the most significant."""
    if not parts:
        raise SolverError("concat() needs at least one argument")
    if len(parts) == 1:
        return parts[0]
    # Flatten nested concats so extraction over concat simplifies well.
    flat: list = []
    for p in parts:
        if p.op == CONCAT:
            flat.extend(p.args)
        else:
            flat.append(p)
    # Merge adjacent constants.
    merged: list = []
    for p in flat:
        if merged and merged[-1].is_const and p.is_const:
            prev = merged.pop()
            merged.append(const((prev.value << p.width) | p.value, prev.width + p.width))
        else:
            merged.append(p)
    if len(merged) == 1:
        return merged[0]
    width = sum(p.width for p in merged)
    return _intern(CONCAT, width, tuple(merged))


def extract(a: BitVec, hi: int, lo: int) -> BitVec:
    """Bits ``hi`` down to ``lo`` inclusive (LSB is bit 0)."""
    if not (0 <= lo <= hi < a.width):
        raise SolverError(f"extract[{hi}:{lo}] out of range for width {a.width}")
    width = hi - lo + 1
    if width == a.width:
        return a
    if a.is_const:
        return const(a.value >> lo, width)
    if a.op == ZEXT:
        inner = a.args[0]
        if hi < inner.width:
            return extract(inner, hi, lo)
        if lo >= inner.width:
            return const(0, width)
    if a.op == CONCAT:
        # Resolve the extraction against the concat parts when it falls
        # entirely within one part or spans parts with aligned cuts.
        offset = 0
        pieces = []
        for part in reversed(a.args):  # reversed: LSB part first
            part_lo, part_hi = offset, offset + part.width - 1
            if part_hi < lo or part_lo > hi:
                offset += part.width
                continue
            take_lo = max(lo, part_lo) - part_lo
            take_hi = min(hi, part_hi) - part_lo
            pieces.append(extract(part, take_hi, take_lo))
            offset += part.width
        return concat(*reversed(pieces))
    if a.op == EXTRACT:
        inner_lo = a.value & 0xFFFF  # type: ignore[operator]
        return extract(a.args[0], inner_lo + hi, inner_lo + lo)
    return _intern(EXTRACT, width, (a,), value=(hi << 16) | lo)


def zext(a: BitVec, width: int) -> BitVec:
    if width < a.width:
        raise SolverError(f"zext to narrower width {width} < {a.width}")
    if width == a.width:
        return a
    if a.is_const:
        return const(a.value, width)
    return _intern(ZEXT, width, (a,))


def sext(a: BitVec, width: int) -> BitVec:
    if width < a.width:
        raise SolverError(f"sext to narrower width {width} < {a.width}")
    if width == a.width:
        return a
    if a.is_const:
        return const(_to_signed(a.value, a.width), width)
    return _intern(SEXT, width, (a,))


def eq(a: BitVec, b: BitVec) -> BitVec:
    _check_same_width(a, b, EQ)
    if a is b:
        return true()
    if a.is_const and b.is_const:
        return const(int(a.value == b.value), 1)
    return _intern(EQ, 1, (a, b))


def ne(a: BitVec, b: BitVec) -> BitVec:
    return not_(eq(a, b))


def ult(a: BitVec, b: BitVec) -> BitVec:
    if a is b:
        return false()
    return _binop_cmp(ULT, a, b)


def ule(a: BitVec, b: BitVec) -> BitVec:
    if a is b:
        return true()
    return _binop_cmp(ULE, a, b)


def slt(a: BitVec, b: BitVec) -> BitVec:
    if a is b:
        return false()
    return _binop_cmp(SLT, a, b)


def sle(a: BitVec, b: BitVec) -> BitVec:
    if a is b:
        return true()
    return _binop_cmp(SLE, a, b)


def ugt(a: BitVec, b: BitVec) -> BitVec:
    return ult(b, a)


def uge(a: BitVec, b: BitVec) -> BitVec:
    return ule(b, a)


def sgt(a: BitVec, b: BitVec) -> BitVec:
    return slt(b, a)


def sge(a: BitVec, b: BitVec) -> BitVec:
    return sle(b, a)


def _binop_cmp(op: str, a: BitVec, b: BitVec) -> BitVec:
    _check_same_width(a, b, op)
    if a.is_const and b.is_const:
        node = BitVec(op, 1, (a, b))
        return const(_eval_op(node, [a.value, b.value]), 1)
    return _intern(op, 1, (a, b))


def ite(cond: BitVec, then: BitVec, other: BitVec) -> BitVec:
    if cond.width != 1:
        raise SolverError(f"ite condition must be 1 bit, got {cond.width}")
    _check_same_width(then, other, ITE)
    if cond.is_const:
        return then if cond.value else other
    if then is other:
        return then
    # ite(c, 1, 0) over booleans is just c.
    if then.width == 1 and then.is_const and other.is_const:
        if then.value == 1 and other.value == 0:
            return cond
        if then.value == 0 and other.value == 1:
            return not_(cond)
    return _intern(ITE, then.width, (cond, then, other))


def bool_and(*conds: BitVec) -> BitVec:
    acc = true()
    for c in conds:
        acc = and_(acc, c)
    return acc


def bool_or(*conds: BitVec) -> BitVec:
    acc = false()
    for c in conds:
        acc = or_(acc, c)
    return acc


def implies(a: BitVec, b: BitVec) -> BitVec:
    return or_(not_(a), b)


def clear_intern_cache() -> None:
    """Drop the global interning table (mainly for memory-sensitive tests)."""
    BitVec._interned.clear()
