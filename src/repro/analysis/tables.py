"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width table; numeric cells are right-aligned."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in rows:
        cells = []
        for cell, width in zip(row, widths):
            if _is_numeric(cell):
                cells.append(cell.rjust(width))
            else:
                cells.append(cell.ljust(width))
        out.append(" | ".join(cells))
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.3f}"
        return f"{cell:.3e}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def format_si_time(seconds: float) -> str:
    """Human-scale time: 1.23 us / 4.56 ms / 7.89 s."""
    if seconds == 0:
        return "0"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.2f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
