"""Peripheral corpus catalog.

The paper evaluates HardSnap "on a corpus of 4 synthetic real world and
open-source peripherals... selected because they are common on embedded
systems and have different design complexities" (§V). Our corpus spans
the same axes:

========== ============ =============================================
peripheral state bits   role
========== ============ =============================================
timer      ~160         tiny control-dominated block with IRQ
uart       ~310         serial + FIFOs (communication interface)
aes128     ~600         crypto accelerator, wide datapath
sha256     ~1100        crypto accelerator, datapath + RAM schedule
========== ============ =============================================

``EXTENDED_CORPUS`` adds gpio (minimal), intc (IRQ aggregation) and dma
(memory-dominated state) for the wider experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Dict, List, Optional

from repro.hdl import elaborate
from repro.hdl.ir import Design
from repro.peripherals import (aes128, dma, gpio, gpio_wb, intc, sha256,
                               timer, uart, wdt)


@dataclass(frozen=True)
class PeripheralSpec:
    """Static description of one corpus peripheral."""

    name: str
    module: ModuleType
    addr_bits: int
    has_irq: bool
    registers: Dict[str, int]
    #: Bus interface the module exposes: "axi" (AXI4-Lite) or "wishbone".
    bus: str = "axi"

    @property
    def window_size(self) -> int:
        """Size of the MMIO window the peripheral decodes."""
        return 1 << self.addr_bits

    def verilog(self) -> str:
        return self.module.verilog()

    def elaborate(self) -> Design:
        return elaborate(self.verilog(), self.name)


def _spec(mod: ModuleType) -> PeripheralSpec:
    return PeripheralSpec(
        name=mod.NAME,
        module=mod,
        addr_bits=mod.ADDR_BITS,
        has_irq=mod.IRQ,
        registers=dict(mod.REGISTERS),
        bus=getattr(mod, "BUS", "axi"),
    )


GPIO = _spec(gpio)
GPIO_WB = _spec(gpio_wb)
TIMER = _spec(timer)
UART = _spec(uart)
SHA256 = _spec(sha256)
AES128 = _spec(aes128)
INTC = _spec(intc)
DMA = _spec(dma)
WDT = _spec(wdt)

#: The paper's four-peripheral evaluation corpus.
CORPUS: List[PeripheralSpec] = [TIMER, UART, AES128, SHA256]

#: Corpus plus the supporting blocks (gpio_wb is the Wishbone variant
#: demonstrating the modular bus abstraction).
EXTENDED_CORPUS: List[PeripheralSpec] = [GPIO, GPIO_WB, TIMER, UART, AES128,
                                         SHA256, INTC, DMA, WDT]

_BY_NAME = {spec.name: spec for spec in EXTENDED_CORPUS}


def get(name: str) -> PeripheralSpec:
    spec = _BY_NAME.get(name)
    if spec is None:
        raise KeyError(f"unknown peripheral {name!r}; "
                       f"available: {sorted(_BY_NAME)}")
    return spec


def names() -> List[str]:
    return sorted(_BY_NAME)
