"""Verilog frontend: lexer, parser, AST, elaborator and RTL IR.

Entry point: :func:`~repro.hdl.elaborator.elaborate` turns Verilog source
text (or a parsed :class:`~repro.hdl.ast_nodes.SourceFile`) into a flat,
width-resolved :class:`~repro.hdl.ir.Design` ready for simulation or
instrumentation.
"""

from repro.hdl import ast_nodes, ir
from repro.hdl.elaborator import elaborate
from repro.hdl.lexer import tokenize
from repro.hdl.parser import parse

__all__ = ["ast_nodes", "ir", "elaborate", "parse", "tokenize"]
