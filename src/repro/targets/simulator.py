"""The simulator target (paper §III-A "Simulator Target", §III-C).

Hosts peripherals on the tree-walking :class:`Interpreter` backend — the
Verilator-process analogue — reached through a shared-memory remote
interface. Properties:

* **full visibility**: every internal net is inspectable at any time and
  VCD tracing can be attached (the reason multi-target orchestration
  transfers states *to* this target),
* **snapshot method**: CRIU-style process checkpoint. The controller
  flushes pending bus operations, freezes the process, and stores the
  image; we capture the canonical state (behaviourally identical) and
  charge a CRIU cost model — fixed freeze/dump overhead plus image size
  over storage bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bus.transport import SHARED_MEMORY, Transport
from repro.errors import SnapshotError
from repro.hdl.ir import Design
from repro.sim.interpreter import Interpreter
from repro.sim.vcd import VcdWriter
from repro.targets.base import HardwareTarget, HwSnapshot

#: Effective simulation speed of the interpreted backend, cycles/second.
#: (Verilator on the paper's testbed reaches a few MHz on small designs;
#: our interpreter plays that role at its own scale.)
DEFAULT_SIM_CLOCK_HZ = 1e6


@dataclass(frozen=True)
class CriuModel:
    """Cost model for checkpoint/restore of the simulator process."""

    #: Freeze + dump fixed overhead (page-map walking, descriptors).
    checkpoint_base_s: float = 28e-3
    restore_base_s: float = 18e-3
    #: Resident image of the simulator process beyond design state.
    process_image_bytes: int = 6 * 1024 * 1024
    #: Persistent-storage streaming bandwidth.
    storage_bytes_per_s: float = 1.2e9
    #: Pages of the simulator process itself (stack, allocator churn)
    #: that an incremental dump with soft-dirty tracking still rewrites.
    incremental_image_bytes: int = 256 * 1024

    def image_bytes(self, state_bits: int) -> int:
        return self.process_image_bytes + state_bits // 8

    def checkpoint_s(self, state_bits: int) -> float:
        return (self.checkpoint_base_s
                + self.image_bytes(state_bits) / self.storage_bytes_per_s)

    def incremental_checkpoint_s(self, dirty_state_bits: int) -> float:
        """Incremental dump (CRIU ``--track-mem``): only pages written
        since the previous checkpoint are streamed out."""
        image = self.incremental_image_bytes + dirty_state_bits // 8
        return self.checkpoint_base_s + image / self.storage_bytes_per_s

    def restore_s(self, state_bits: int) -> float:
        return (self.restore_base_s
                + self.image_bytes(state_bits) / self.storage_bytes_per_s)


class SimulatorTarget(HardwareTarget):
    """Interpreter-backed target with full visibility and CRIU snapshots."""

    visibility = "full"

    def __init__(self, name: str = "simulator",
                 clock_hz: float = DEFAULT_SIM_CLOCK_HZ,
                 transport: Transport = SHARED_MEMORY,
                 criu: Optional[CriuModel] = None):
        super().__init__(name, clock_hz, transport)
        self.criu = criu or CriuModel()
        self.snapshots_taken = 0
        self.snapshots_restored = 0
        # Dirty-page tracking starts with the first full dump; until then
        # every checkpoint is a complete image.
        self._tracking = False

    def _make_sim(self, design: Design) -> Interpreter:
        return Interpreter(design)

    # -- full-visibility extras ----------------------------------------------

    def attach_vcd(self, instance_name: str,
                   writer: Optional[VcdWriter] = None) -> VcdWriter:
        """Attach a VCD trace to one peripheral (simulator-only feature)."""
        instance = self._instance(instance_name)
        if writer is None:
            writer = VcdWriter()
        instance.sim.attach_vcd(writer)
        return writer

    def peek_memory(self, instance_name: str, memory: str, index: int) -> int:
        return self._instance(instance_name).sim.peek_memory(memory, index)

    # -- snapshotting -------------------------------------------------------------

    def reset(self) -> None:
        # A power-on reset restarts the simulator process: dirty-page
        # tracking must be re-established with a fresh full dump.
        super().reset()
        self._tracking = False

    def save_snapshot(self) -> HwSnapshot:
        """Flush, freeze and checkpoint the whole simulator process.

        The first checkpoint streams the complete process image; once
        dirty-page tracking is armed, later checkpoints are incremental
        dumps priced by the state that actually changed ("the simulator
        prices only dirty state").
        """
        # "Flush pending read/write operations": the BFM is idle between
        # transactions by construction; _capture_instance settles anyway.
        states, dirty = self.capture_states()
        bits = sum(inst.state_bits for inst in self.instances.values())
        if self._tracking:
            dirty_bits = sum(self.instances[name].state_bits
                             for name in dirty)
            cost = self.criu.incremental_checkpoint_s(dirty_bits)
        else:
            cost = self.criu.checkpoint_s(bits)
            self._tracking = True
        self.timer.add_fixed(cost)
        self.snapshots_taken += 1
        snapshot = HwSnapshot(states, method="criu", bits=bits,
                              modelled_cost_s=cost, dirty=dirty)
        if self._injector is not None:
            snapshot.seal()
        self._mark_verified(snapshot)
        return snapshot

    def restore_snapshot(self, snapshot: HwSnapshot) -> None:
        missing = set(snapshot.states) - set(self.instances)
        if missing:
            raise SnapshotError(
                f"snapshot references unknown instances {sorted(missing)}")
        self._verify_integrity(snapshot)
        bits = 0
        for name, state in snapshot.states.items():
            instance = self.instances[name]
            instance.sim.load_state(state)
            bits += instance.state_bits
        cost = self.criu.restore_s(bits)
        self.timer.add_fixed(cost)
        self.snapshots_restored += 1
        self._note_restored(snapshot)
        self._mark_verified(snapshot)
