"""E6 — scan-chain instrumentation overhead per corpus peripheral.

§IV-A's toolchain cost accounting: how much logic the RTL-to-RTL pass
adds. One 2:1 mux lands in front of every scanned state bit, three ports
and one shift process are added; the emitted Verilog grows accordingly.

Expected shapes: mux count == chain length == state bits; relative
overhead is constant per bit (the pass is linear); the instrumented
design still behaves identically with scan_enable low (verified by
co-simulation in the test suite, re-checked here on one peripheral).
"""

import random

from benchmarks.conftest import emit
from repro.analysis import format_table
from repro.hdl import elaborate
from repro.instrument import emit_verilog, insert_scan_chain, overhead_row
from repro.peripherals import catalog
from repro.sim import CompiledSimulation


def test_instrumentation_overhead(benchmark, corpus):
    designs = {spec.name: spec.elaborate() for spec in corpus}
    rows_data = benchmark.pedantic(
        lambda: [overhead_row(designs[spec.name]) for spec in corpus],
        rounds=1, iterations=1)

    rows = []
    for row in rows_data:
        rows.append([row.design, row.flip_flops, row.memory_bits,
                     row.chain_length, row.added_muxes,
                     f"{row.mux_overhead_pct:.0f}%",
                     row.verilog_lines_before, row.verilog_lines_after])
    emit("instrumentation_overhead", format_table(
        ["peripheral", "flip-flops", "mem bits", "chain bits",
         "added muxes", "mux/bit", "LoC before", "LoC after"],
        rows, title="E6: scan-chain instrumentation overhead"))

    for row in rows_data:
        assert row.added_muxes == row.chain_length
        assert row.chain_length == row.flip_flops + row.memory_bits
        assert row.verilog_lines_after > row.verilog_lines_before


def test_instrumented_functional_equivalence(benchmark):
    """With scan_enable low the instrumented timer is cycle-identical to
    the original (same random stimulus, every output compared)."""
    def run():
        design = catalog.TIMER.elaborate()
        scan = insert_scan_chain(design)
        orig = CompiledSimulation(design)
        inst = CompiledSimulation(scan.design)
        rng = random.Random(21)
        inputs = [n.name for n in design.inputs if n.name != "clk"]
        for s in (orig, inst):
            s.poke("rst", 1); s.step(2); s.poke("rst", 0)
        inst.poke("scan_enable", 0)
        mismatches = 0
        for _ in range(300):
            pokes = {n: rng.randrange(1 << min(design.nets[n].width, 30))
                     for n in inputs if rng.random() < 0.25}
            for s in (orig, inst):
                if pokes:
                    s.poke_many(pokes)
                s.step()
            for out in design.outputs:
                if orig.peek(out.name) != inst.peek(out.name):
                    mismatches += 1
        return mismatches

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 0


def test_emitted_verilog_reparses(benchmark):
    """The instrumented RTL stays toolchain-independent: it re-emits as
    plain Verilog that this frontend re-accepts."""
    def run():
        design = catalog.UART.elaborate()
        scan = insert_scan_chain(design)
        text = emit_verilog(scan.design)
        redesign = elaborate(text, "uart_scan")
        return redesign.state_bit_count >= scan.chain_length

    assert benchmark.pedantic(run, rounds=1, iterations=1)
