"""HardSnap reproduction — hardware/software co-snapshotting for embedded
systems security testing (Corteggiani & Francillon, DSN 2020).

The package is organised as the paper's three components plus the
substrates they stand on:

* :mod:`repro.hdl`, :mod:`repro.sim` — a Verilog frontend and cycle-accurate
  RTL simulator (the Verilator analogue),
* :mod:`repro.instrument` — the scan-chain insertion toolchain
  (*Peripheral Snapshotting Mechanism*),
* :mod:`repro.bus`, :mod:`repro.targets` — AXI4-Lite/Wishbone bus models and
  the simulator/FPGA hardware targets with multi-target orchestration,
* :mod:`repro.solver`, :mod:`repro.isa`, :mod:`repro.vm` — a bitvector
  solver, a small RISC ISA and the *Selective Symbolic Virtual Machine*,
* :mod:`repro.core` — the *Snapshotting Controller*, the HardSnap session
  facade (Algorithm 1) and the naive baselines,
* :mod:`repro.peripherals`, :mod:`repro.firmware` — the evaluation corpus.
"""

__version__ = "1.0.0"

from repro.core.config import SessionConfig  # noqa: E402
from repro.core.engine import AnalysisReport  # noqa: E402
from repro.core.hardsnap import HardSnapSession, run_all_strategies  # noqa: E402

__all__ = ["HardSnapSession", "SessionConfig", "AnalysisReport",
           "run_all_strategies", "__version__"]
