"""HS32 disassembler — for diagnostics, traces and bug reports."""

from __future__ import annotations

from typing import Dict, List

from repro.isa import encoding as enc

_HS_NAMES = {
    enc.HS_SYMBOLIC: "sym",
    enc.HS_ASSUME: "assume",
    enc.HS_ASSERT: "assert",
    enc.HS_SET_IVT: "setivt",
    enc.HS_EI: "ei",
    enc.HS_DI: "di",
    enc.HS_TRACE: "trace",
    enc.HS_SYMBOLIC_BYTES: "symbuf",
}


def disassemble_word(word: int, pc: int = 0) -> str:
    """One instruction word -> assembly-like text."""
    instr = enc.decode(word)
    op = instr.opcode
    name = instr.name
    if op in enc.R_TYPE:
        return f"{name} r{instr.rd}, r{instr.rs1}, r{instr.rs2}"
    if op in enc.I_ALU:
        if op == enc.LUI:
            return f"lui r{instr.rd}, 0x{instr.imm & 0xFFFF:x}"
        return f"{name} r{instr.rd}, r{instr.rs1}, {instr.imm}"
    if op in enc.LOADS:
        return f"{name} r{instr.rd}, {instr.imm}(r{instr.rs1})"
    if op in enc.STORES:
        return f"{name} r{instr.rd}, {instr.imm}(r{instr.rs1})"
    if op in enc.BRANCHES:
        return f"{name} r{instr.rd}, r{instr.rs1}, 0x{(pc + instr.imm) & 0xFFFFFFFF:x}"
    if op == enc.JAL:
        target = (pc + instr.imm) & 0xFFFFFFFF
        if instr.rd == 0:
            return f"j 0x{target:x}"
        if instr.rd == enc.REG_LR:
            return f"call 0x{target:x}"
        return f"jal r{instr.rd}, 0x{target:x}"
    if op == enc.JALR:
        if instr.rd == 0 and instr.rs1 == enc.REG_LR and instr.imm == 0:
            return "ret"
        return f"jalr r{instr.rd}, r{instr.rs1}, {instr.imm}"
    if op == enc.HALT:
        return f"halt r{instr.rs1}"
    if op == enc.IRET:
        return "iret"
    if op == enc.HS:
        func = instr.imm & 0xFF
        mnemonic = _HS_NAMES.get(func, f"hs#{func}")
        if func in (enc.HS_SYMBOLIC,):
            return f"{mnemonic} r{instr.rd}"
        if func == enc.HS_SYMBOLIC_BYTES:
            return f"{mnemonic} r{instr.rs1}, r{instr.rd}"
        if func in (enc.HS_EI, enc.HS_DI):
            return mnemonic
        return f"{mnemonic} r{instr.rs1}"
    return f".word 0x{word:08x}"


def disassemble_program(words: Dict[int, int]) -> List[str]:
    """Byte-addr->word map -> listing lines."""
    return [f"{addr:08x}:  {word:08x}  {disassemble_word(word, addr)}"
            for addr, word in sorted(words.items())]
