"""E9 — parallel scaling: sharded workers vs the serial runtime.

HardSnap's snapshots make states portable, so N target instances can
explore concurrently (§VI discusses scaling co-testing beyond one
target). This experiment measures the worker-pool runtime two ways:

* **fuzzing throughput** — the input-sharded :class:`ParallelFuzzer`
  against the packet-parser firmware at 1/2/4 workers vs the serial
  fuzzer, under **both transports** (shared-memory slabs and the plain
  queue fallback), *with identical results asserted*: same crashes,
  same edge set, byte-identical verdict string for every cell. The
  workload is **scaled until the serial baseline takes ≥ 2 s** (probe
  run → executions rounded up to whole batches), so speedup ratios sit
  well above timer noise; every cell records ``executions/s`` next to
  its speedup.
* **DSE verdict identity + state-wire economics** — the leased
  :class:`ParallelAnalysisEngine` reproduces the serial engine's
  verdicts on a forking workload at 1/2/4 workers under both
  transports, and the delta state wire
  (:mod:`repro.parallel.statewire`) is measured against a full-pickle
  baseline cell (``delta_state=False``): the **wire-efficiency gate**
  requires mean delta bytes per shipped state < 25 % of mean
  full-pickle bytes.

The full-pickle baseline cell doubles as the **shm-lane proof**: its
fat envelopes exceed the transport's 2048-byte blob floor and ride the
coordinator→worker shared-memory lane (``shm_bytes_out > 0``). The
delta cells' envelopes sit *below* the floors — that is the codec
working as intended, and inline queueing is then optimal (a sub-KB
message costs less to enqueue than to stage + ack in a slab), so
``shm_bytes_out == 0`` under deltas is recorded as a feature, with the
baseline cell proving the lane itself functions.

Speedup is only asserted for worker counts the host can actually run
concurrently (``effective cores >= workers``); other counts still
verify every identity property, and the skipped gate is recorded in
the artifact — never silently dropped. The gate: the default transport
must beat serial (> 1.0x) at 2 workers.

Emits ``benchmarks/out/BENCH_parallel.json`` with the scaling table.
"""

import os
import time

from benchmarks.conftest import emit, emit_json
from repro.analysis import format_table
from repro.core import HardSnapSession, SnapshotFuzzer
from repro.firmware import TIMER_BASE, dispatcher, fuzz_packet_parser
from repro.isa import assemble
from repro.parallel import ParallelAnalysisEngine, ParallelFuzzer
from repro.parallel.shm import shm_available
from repro.peripherals import catalog
from repro.targets import FpgaTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]
# The cmd-2 seed programs a long timer wait: each execution steps the
# RTL simulation for dozens of cycles, so per-input hardware work (the
# thing workers parallelise) dominates the result-merge traffic.
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 31])]
BATCH = 64
#: Workload for the scaling probe; the real run is scaled from it.
PROBE_EXECUTIONS = 576  # 9 batches
#: Measurement floor: the serial fuzz baseline must take at least this
#: long, or speedup ratios drown in scheduler/timer noise.
MIN_SERIAL_S = 2.0
#: Ceiling so a fast host cannot scale the run into minutes.
MAX_EXECUTIONS = 19_968  # 312 batches
WORKER_COUNTS = [1, 2, 4]
#: The parallel runtime must beat serial at 2 workers (the ISSUE-8
#: headline) on the default transport, when the host has the cores.
MIN_SPEEDUP = 1.0
GATE_WORKERS = 2
#: Wire-efficiency gate (ISSUE-9): mean delta-encoded state bytes must
#: be < 25 % of mean full-pickle state bytes on the DSE workload.
MAX_STATE_BYTES_RATIO = 0.25

DSE_FIRMWARE_ARGS = dict(n_paths=6, work_cycles=8)
DSE_INSTRUCTIONS = 200_000


def _effective_cores() -> int:
    """Cores this process may actually run on (affinity/cgroup aware) —
    the number that decides whether a speedup gate is meaningful."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _transports():
    kinds = ["queue"]
    if shm_available():
        kinds.insert(0, "shm")  # default first
    return kinds


def _serial_fuzz(executions):
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, seed=3)
    start = time.perf_counter()
    report = fuzzer.run(executions=executions, batch_size=BATCH)
    return report, time.perf_counter() - start


def _scaled_executions(probe_s: float) -> int:
    """Executions needed to push the serial baseline past the floor,
    rounded up to whole batches (the fuzzer's scheduling granule, so
    parallel runs replay the identical batch sequence)."""
    if probe_s >= MIN_SERIAL_S:
        return PROBE_EXECUTIONS
    per_exec = probe_s / PROBE_EXECUTIONS
    need = (MIN_SERIAL_S * 1.15) / per_exec  # 15% headroom over floor
    batches = -(-int(need) // BATCH) + 1
    return min(batches * BATCH, MAX_EXECUTIONS)


def _parallel_fuzz(workers, transport, executions):
    with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                        workers=workers, batch_size=BATCH,
                        seed=3, transport=transport) as fuzzer:
        fuzzer.warm()  # target elaboration out of the timed region
        start = time.perf_counter()
        report = fuzzer.run(executions=executions)
        elapsed = time.perf_counter() - start
        stats = fuzzer.pool_stats
    return report, elapsed, stats


def _dse_cell(transport, workers, delta_state=True):
    with ParallelAnalysisEngine(dispatcher(**DSE_FIRMWARE_ARGS), TIMER,
                                workers=workers, transport=transport,
                                delta_state=delta_state,
                                scan_mode="functional") as engine:
        start = time.perf_counter()
        report = engine.run(max_instructions=DSE_INSTRUCTIONS)
        elapsed = time.perf_counter() - start
        stats = engine.pool_stats
    return report, elapsed, stats


def test_parallel_scaling(benchmark):
    # -- workload scaling: serial baseline above the measurement floor --
    _probe_report, probe_s = _serial_fuzz(PROBE_EXECUTIONS)
    executions = _scaled_executions(probe_s)
    if executions == PROBE_EXECUTIONS:
        serial, serial_s = _probe_report, probe_s
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    else:
        serial, serial_s = benchmark.pedantic(
            _serial_fuzz, args=(executions,), rounds=1, iterations=1)

    transports = _transports()
    default_transport = transports[0]
    rows = [["serial", "-", 1, f"{serial_s:.3f}", "1.00x",
             f"{executions / serial_s:.0f}",
             len(serial.crashes), serial.edges_covered, "-", "-",
             "reference"]]
    cells = {}
    for transport in transports:
        for workers in WORKER_COUNTS:
            report, elapsed, stats = _parallel_fuzz(workers, transport,
                                                    executions)
            identical = (report.verdict_summary()
                         == serial.verdict_summary())
            ipc = stats.ipc
            cells[(transport, workers)] = (report, elapsed, identical,
                                           ipc.as_dict())
            rows.append([
                "parallel", stats.transport, workers, f"{elapsed:.3f}",
                f"{serial_s / elapsed:.2f}x",
                f"{executions / elapsed:.0f}",
                len(report.crashes), report.edges_covered,
                f"{ipc.queue_bytes_out + ipc.queue_bytes_in}",
                f"{ipc.shm_bytes_out + ipc.shm_bytes_in}",
                "identical" if identical else "DIVERGED"])

    cores = os.cpu_count() or 1
    effective_cores = _effective_cores()
    table = format_table(
        ["runtime", "transport", "workers", "host s", "speedup",
         "exec/s", "crashes", "edges", "queue B", "shm B",
         "verdict vs serial"],
        rows,
        title=f"E9: input-sharded fuzzing, {executions} executions "
              f"(batch {BATCH}, {cores} host cores, "
              f"{effective_cores} effective)")
    emit("parallel_scaling", table)

    # -- DSE: verdict identity at 1/2/4 workers under both transports,
    # and state-wire economics vs a full-pickle baseline cell ----------
    dse_serial = HardSnapSession(
        dispatcher(**DSE_FIRMWARE_ARGS), TIMER,
        scan_mode="functional").run(max_instructions=DSE_INSTRUCTIONS)
    dse_cells = {}
    for transport in transports:
        for workers in WORKER_COUNTS:
            report, elapsed, stats = _dse_cell(transport, workers)
            dse_cells[(transport, workers)] = {
                "host_s": elapsed,
                "verdict_identical": (report.verdict_summary()
                                      == dse_serial.verdict_summary()),
                "ipc": stats.ipc.as_dict(),
                "state_wire": stats.state_wire.as_dict(),
            }
    baseline_report, baseline_s, baseline_stats = _dse_cell(
        default_transport, GATE_WORKERS, delta_state=False)
    baseline_cell = {
        "host_s": baseline_s,
        "verdict_identical": (baseline_report.verdict_summary()
                              == dse_serial.verdict_summary()),
        "ipc": baseline_stats.ipc.as_dict(),
        "state_wire": baseline_stats.state_wire.as_dict(),
    }

    # Wire-efficiency gate: mean state bytes per shipped state, delta
    # vs full pickle, on the same workload/transport/worker count.
    delta_sw = dse_cells[(default_transport, GATE_WORKERS)]["state_wire"]
    full_sw = baseline_cell["state_wire"]
    mean_delta_b = (delta_sw["state_bytes_delta"]
                    / max(1, delta_sw["delta_states"]))
    mean_full_b = (full_sw["state_bytes_full"]
                   / max(1, full_sw["full_states"]))
    wire_gate = {
        "mean_delta_bytes_per_state": round(mean_delta_b, 1),
        "mean_full_bytes_per_state": round(mean_full_b, 1),
        "ratio": round(mean_delta_b / mean_full_b, 4),
        "max_ratio": MAX_STATE_BYTES_RATIO,
        "enforced": True,  # byte accounting needs no spare cores
    }

    # Coordinator→worker shm lane: the full-pickle baseline must use it
    # (fat envelopes exceed the blob floor); the delta cells' envelopes
    # sit below the floors by design, where inline queueing wins.
    shm_lane = {
        "delta_shm_bytes_out":
            dse_cells[(default_transport, GATE_WORKERS)]["ipc"]
            ["shm_bytes_out"],
        "full_baseline_shm_bytes_out":
            baseline_cell["ipc"]["shm_bytes_out"],
        "note": (
            "full-pickle lease envelopes exceed the 2048B blob floor "
            "and ride the coordinator->worker shm lane; delta-encoded "
            "envelopes are smaller than both shm floors (512B chunk / "
            "2048B blob), where inline queueing is cheaper than "
            "slab staging + acks — shm_bytes_out == 0 under deltas "
            "is the codec shrinking the traffic, not a starved lane"),
    }

    # Speedup gate eligibility: judging scaling on a runner without the
    # cores to scale onto is meaningless, but the skipped gate must be
    # visible in the artifact (no-silent-caps).
    gate_eligible = effective_cores >= GATE_WORKERS
    gate = {"min_speedup": MIN_SPEEDUP, "workers": GATE_WORKERS,
            "transport": default_transport, "enforced": gate_eligible}
    if not gate_eligible:
        gate["note"] = (
            f"speedup gate SKIPPED: {effective_cores} effective core(s) "
            f"cannot host {GATE_WORKERS} concurrent workers; identity "
            f"properties still asserted")
        print(gate["note"])

    emit_json("BENCH_parallel.json", {
        "experiment": "parallel_scaling",
        "host_cores": cores,
        "effective_cores": effective_cores,
        "executions": executions,
        "probe_executions": PROBE_EXECUTIONS,
        "probe_host_s": probe_s,
        "min_serial_s": MIN_SERIAL_S,
        "batch_size": BATCH,
        "serial_host_s": serial_s,
        "serial_execs_per_s": executions / serial_s,
        "default_transport": default_transport,
        "transports": {
            transport: {
                str(w): {
                    "host_s": elapsed,
                    "speedup": serial_s / elapsed,
                    "execs_per_s": executions / elapsed,
                    "crashes": len(report.crashes),
                    "edges": report.edges_covered,
                    "verdict_identical": identical,
                    "ipc": ipc,
                } for (t, w), (report, elapsed, identical, ipc)
                in cells.items() if t == transport
            } for transport in transports
        },
        "speedup_gate": gate,
        "dse": {
            "serial_instructions": dse_serial.instructions,
            "cells": {f"{t}/{w}": cell
                      for (t, w), cell in dse_cells.items()},
            "full_pickle_baseline": baseline_cell,
        },
        "state_wire_gate": wire_gate,
        "shm_lane": shm_lane,
    })

    # Identity holds unconditionally, per transport and worker count.
    for (transport, workers), (report, _, identical, _ipc) in \
            cells.items():
        assert identical, (f"transport={transport} workers={workers} "
                           f"diverged from serial")
        assert [c.input_bytes for c in report.crashes] == \
            [c.input_bytes for c in serial.crashes]
        assert report.edge_set == serial.edge_set
    for (transport, workers), cell in dse_cells.items():
        assert cell["verdict_identical"], (
            f"DSE transport={transport} workers={workers} diverged")
    assert baseline_cell["verdict_identical"], \
        "full-pickle baseline diverged from serial"
    assert serial.crashes and serial.crashes[0].input_bytes[1] >= 0x80
    assert serial_s >= MIN_SERIAL_S, (
        f"serial baseline {serial_s:.2f}s below the {MIN_SERIAL_S}s "
        f"measurement floor even at {executions} executions")

    # Wire-efficiency gate: the delta codec must cut per-state bytes to
    # under a quarter of the full-pickle baseline.
    assert delta_sw["delta_states"] > 0 and full_sw["full_states"] > 0
    assert wire_gate["ratio"] < MAX_STATE_BYTES_RATIO, (
        f"state wire shipped {mean_delta_b:.0f}B/state vs "
        f"{mean_full_b:.0f}B full — ratio {wire_gate['ratio']:.3f} "
        f"exceeds {MAX_STATE_BYTES_RATIO}")

    # Shm-lane proof: the lane demonstrably works when envelopes are
    # fat enough to need it.
    if default_transport == "shm":
        assert shm_lane["full_baseline_shm_bytes_out"] > 0, (
            "full-pickle baseline sent no coordinator->worker shm "
            "bytes — the outbound lane is broken, not merely unneeded")

    # Scaling gate: the default transport must beat serial at 2 workers
    # where the host can truly run them.
    if gate_eligible:
        _, elapsed, _, _ = cells[(default_transport, GATE_WORKERS)]
        assert serial_s / elapsed >= MIN_SPEEDUP, (
            f"{default_transport} speedup {serial_s / elapsed:.2f}x at "
            f"{GATE_WORKERS} workers < {MIN_SPEEDUP}x "
            f"({effective_cores} effective cores)")
