"""State-selection heuristics (the ``SelectNextState`` of Algorithm 1).

The paper keeps KLEE's pluggable searchers and adds one constraint:
a state servicing an interrupt is *atomic* — the searcher must keep
returning it until the handler finishes (Inception's timing-violation
avoidance, §IV-B). That rule is enforced here for every heuristic.

A second, cost-aware heuristic (:class:`SnapshotAffinitySearcher`)
prefers to keep scheduling the previous state while it remains active:
every state switch costs a hardware context switch (UpdateState +
RestoreState), so batching work per state minimises snapshot traffic.
This is the searcher HardSnap-style engines default to.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.errors import VmError
from repro.vm.state import ExecState


class Searcher:
    """Base class: a mutable working set of active states."""

    def __init__(self) -> None:
        self.states: List[ExecState] = []

    def add(self, state: ExecState) -> None:
        self.states.append(state)

    def remove(self, state: ExecState) -> None:
        self.states.remove(state)

    def __len__(self) -> int:
        return len(self.states)

    def select(self, previous: Optional[ExecState]) -> ExecState:
        """Pick the next state to run; must respect interrupt atomicity."""
        if not self.states:
            raise VmError("no active states to select")
        if previous is not None and previous.in_irq and previous.is_active \
                and previous in self.states:
            return previous
        return self._pick(previous)

    def select_lanes(self, previous: Optional[ExecState],
                     width: int) -> List[ExecState]:
        """Up to *width* distinct states for one batched scheduling pass.

        The first lane is :meth:`select`'s pick (so single-lane batching
        is exactly the serial schedule); extra lanes fill from the
        working set in container order. Interrupt atomicity: a state
        servicing an interrupt is scheduled exclusively — as the sole
        lane when it is the pick, never as a filler lane otherwise."""
        first = self.select(previous)
        if width <= 1 or (first.in_irq and first.is_active):
            return [first]
        lanes = [first]
        for state in self.states:
            if len(lanes) >= width:
                break
            if state is first or not state.is_active or state.in_irq:
                continue
            lanes.append(state)
        return lanes

    def pop_next(self, previous: Optional[ExecState] = None) -> ExecState:
        """Lease hook: select the next state and remove it from the
        working set. The parallel coordinator uses this to hand states to
        workers — a leased state is exclusively owned until its lease
        result merges back (interrupt atomicity holds trivially, since
        the whole handler executes inside one lease)."""
        state = self.select(previous)
        self.remove(state)
        return state

    def _pick(self, previous: Optional[ExecState]) -> ExecState:
        raise NotImplementedError


class DfsSearcher(Searcher):
    """Depth-first: newest state first (KLEE's DFS)."""

    def _pick(self, previous: Optional[ExecState]) -> ExecState:
        return self.states[-1]


class BfsSearcher(Searcher):
    """Breadth-first: oldest state first."""

    def _pick(self, previous: Optional[ExecState]) -> ExecState:
        return self.states[0]


class RoundRobinSearcher(Searcher):
    """Rotate through active states, one quantum each.

    This is the maximally *concurrent* schedule: all paths advance in
    lockstep. It is the schedule under which the naive-and-inconsistent
    baseline exhibits the Fig. 1 corruption — and under which HardSnap's
    per-state snapshots prove their worth (one context switch per
    quantum).
    """

    def __init__(self, quantum: int = 8):
        super().__init__()
        self.quantum = max(1, quantum)
        self._remaining = 0
        self._index = 0

    def _pick(self, previous: Optional[ExecState]) -> ExecState:
        if previous is not None and previous in self.states \
                and previous.is_active and self._remaining > 0:
            self._remaining -= 1
            return previous
        self._index = (self._index + 1) % len(self.states)
        self._remaining = self.quantum - 1
        return self.states[self._index]


class RandomSearcher(Searcher):
    """Uniform random selection with a seeded generator."""

    def __init__(self, seed: int = 0):
        super().__init__()
        self.rng = random.Random(seed)

    def _pick(self, previous: Optional[ExecState]) -> ExecState:
        return self.rng.choice(self.states)


class CoverageSearcher(Searcher):
    """Prefer states whose pc has not been covered yet, then youngest.

    A cheap stand-in for KLEE's md2u/covnew heuristics: states sitting on
    unexplored code get priority, driving exploration toward new
    coverage.
    """

    def __init__(self, covered: Optional[Set[int]] = None):
        super().__init__()
        self.covered: Set[int] = covered if covered is not None else set()

    def _pick(self, previous: Optional[ExecState]) -> ExecState:
        fresh = [s for s in self.states if s.pc not in self.covered]
        pool = fresh if fresh else self.states
        return pool[-1]


class SnapshotAffinitySearcher(Searcher):
    """Keep running the previous state while it lives; DFS otherwise.

    Minimises hardware context switches: UpdateState/RestoreState only
    happen when the scheduled state actually changes (Algorithm 1 line
    5), so sticking to one state amortises snapshot costs across many
    instructions.
    """

    def _pick(self, previous: Optional[ExecState]) -> ExecState:
        if previous is not None and previous.is_active \
                and previous in self.states:
            return previous
        return self.states[-1]


SEARCHERS = {
    "dfs": DfsSearcher,
    "round-robin": RoundRobinSearcher,
    "bfs": BfsSearcher,
    "random": RandomSearcher,
    "coverage": CoverageSearcher,
    "affinity": SnapshotAffinitySearcher,
}


def make_searcher(name: str, **kwargs) -> Searcher:
    cls = SEARCHERS.get(name)
    if cls is None:
        raise VmError(f"unknown searcher {name!r}; have {sorted(SEARCHERS)}")
    return cls(**kwargs)
