"""Hardware target tests: hosting, visibility, snapshot methods, the
snapshot IP, and cross-target orchestration."""

import pytest

from repro.bus.transport import USB3
from repro.errors import SnapshotError, TargetError
from repro.peripherals import catalog, timer
from repro.targets import (FpgaTarget, SimulatorTarget, SnapshotIp,
                           TargetOrchestrator)

TIMER_BASE = 0x4000_0000
UART_BASE = 0x4001_0000


def _target(cls, **kw):
    t = cls(**kw)
    t.add_peripheral(catalog.TIMER, TIMER_BASE)
    t.reset()
    return t


def _arm_timer(t, load=30):
    t.write(TIMER_BASE + timer.REGISTERS["LOAD"], load)
    t.write(TIMER_BASE + timer.REGISTERS["CTRL"],
            timer.CTRL_EN | timer.CTRL_IRQ_EN)


class TestHosting:
    @pytest.mark.parametrize("cls", [SimulatorTarget, FpgaTarget])
    def test_mmio_and_irq(self, cls):
        t = _target(cls)
        _arm_timer(t, 20)
        assert t.irq_lines()["timer"] is False
        t.step(25)
        assert t.irq_lines()["timer"] is True

    def test_unmapped_address_rejected(self):
        t = _target(SimulatorTarget)
        with pytest.raises(TargetError):
            t.read(0x5000_0000)

    def test_duplicate_instance_rejected(self):
        t = SimulatorTarget()
        t.add_peripheral(catalog.TIMER, TIMER_BASE)
        with pytest.raises(TargetError):
            t.add_peripheral(catalog.TIMER, UART_BASE)

    def test_lockstep_between_peripherals(self):
        t = SimulatorTarget()
        t.add_peripheral(catalog.TIMER, TIMER_BASE)
        t.add_peripheral(catalog.UART, UART_BASE, instance_name="uart0")
        t.reset()
        c1 = t.instances["timer"].sim.cycle
        c2 = t.instances["uart0"].sim.cycle
        # A bus access to one peripheral advances the other identically.
        t.write(TIMER_BASE + 4, 10)
        assert (t.instances["timer"].sim.cycle - c1
                == t.instances["uart0"].sim.cycle - c2)

    def test_modelled_time_accumulates(self):
        t = _target(SimulatorTarget)
        before = t.timer.total_s
        t.write(TIMER_BASE + 4, 1)
        t.step(100)
        assert t.timer.total_s > before
        assert t.timer.transport_s > 0


class TestVisibility:
    def test_simulator_full_visibility(self):
        t = _target(SimulatorTarget)
        assert t.peek("timer", "value") == 0
        writer = t.attach_vcd("timer")
        t.step(5)
        assert writer.changes > 0

    def test_fpga_pins_only(self):
        t = _target(FpgaTarget)
        t.peek("timer", "irq")  # pin: fine
        t.peek("timer", "s_axi_awready")  # pin: fine
        with pytest.raises(TargetError):
            t.peek("timer", "value")  # internal register
        with pytest.raises(TargetError):
            t.peek("timer", "expired")


class TestSimulatorSnapshots:
    def test_criu_roundtrip(self):
        t = _target(SimulatorTarget)
        _arm_timer(t, 10)
        t.step(15)
        assert t.irq_lines()["timer"] is True
        snap = t.save_snapshot()
        assert snap.method == "criu"
        t.write(TIMER_BASE + timer.REGISTERS["STATUS"], 1)
        assert t.irq_lines()["timer"] is False
        t.restore_snapshot(snap)
        assert t.irq_lines()["timer"] is True

    def test_criu_cost_model_dominated_by_base(self):
        t = _target(SimulatorTarget)
        snap = t.save_snapshot()
        assert snap.modelled_cost_s > t.criu.checkpoint_base_s
        # Small designs: image dominated by process pages, nearly flat.
        assert snap.modelled_cost_s < 2 * t.criu.checkpoint_base_s

    def test_restore_unknown_instance_rejected(self):
        t = _target(SimulatorTarget)
        snap = t.save_snapshot()
        snap.states["ghost"] = snap.states["timer"]
        with pytest.raises(SnapshotError):
            t.restore_snapshot(snap)


class TestFpgaSnapshots:
    @pytest.mark.parametrize("mode", ["shift", "functional"])
    def test_scan_roundtrip(self, mode):
        t = _target(FpgaTarget, scan_mode=mode)
        _arm_timer(t, 12)
        t.step(16)
        assert t.irq_lines()["timer"] is True
        snap = t.save_snapshot()
        assert snap.method == "scan"
        # Circular scan preserved the live state.
        assert t.irq_lines()["timer"] is True
        t.write(TIMER_BASE + timer.REGISTERS["STATUS"], 1)
        t.restore_snapshot(snap)
        assert t.irq_lines()["timer"] is True

    def test_shift_and_functional_agree(self):
        results = {}
        for mode in ("shift", "functional"):
            t = _target(FpgaTarget, scan_mode=mode)
            _arm_timer(t, 7)
            t.step(9)
            snap = t.save_snapshot()
            nets = {k: v for k, v in snap.states["timer"]["nets"].items()
                    if not k.startswith("scan")}
            results[mode] = (nets, snap.states["timer"]["memories"],
                             snap.modelled_cost_s, snap.bits)
        assert results["shift"][0] == results["functional"][0]
        assert results["shift"][1] == results["functional"][1]
        assert results["shift"][2] == pytest.approx(results["functional"][2])
        assert results["shift"][3] == results["functional"][3]

    def test_scan_cost_scales_with_chain(self):
        small = _target(FpgaTarget, scan_mode="functional")
        big = FpgaTarget(scan_mode="functional")
        big.add_peripheral(catalog.SHA256, TIMER_BASE)
        big.reset()
        s_small = small.save_snapshot()
        s_big = big.save_snapshot()
        assert s_big.bits > s_small.bits
        assert s_big.modelled_cost_s > s_small.modelled_cost_s

    def test_readback_capture_only(self):
        t = _target(FpgaTarget)
        _arm_timer(t, 5)
        t.step(8)
        snap = t.readback_snapshot()
        assert snap.method == "readback"
        assert snap.modelled_cost_s > 0
        nodev = _target(FpgaTarget, has_readback=False)
        with pytest.raises(TargetError):
            nodev.readback_snapshot()

    def test_invalid_scan_mode_rejected(self):
        with pytest.raises(TargetError):
            FpgaTarget(scan_mode="warp")


class TestSnapshotIp:
    def test_sram_hit_cheaper_than_host(self):
        ip = SnapshotIp(100e6, USB3, sram_bits=10_000)
        slot, save_cost = ip.save(1000)
        hit_cost = ip.restore(slot, 1000)
        miss_cost = ip.restore(None, 1000)
        assert hit_cost < miss_cost
        assert ip.stats.sram_hits == 1
        assert ip.stats.host_round_trips == 1

    def test_eviction_fifo(self):
        ip = SnapshotIp(100e6, USB3, sram_bits=2500)
        s1, _ = ip.save(1000)
        s2, _ = ip.save(1000)
        s3, _ = ip.save(1000)  # evicts s1
        assert ip.stats.evictions == 1
        assert ip.resident_count == 2
        # s1 restore now pays the host round trip.
        cost_evicted = ip.restore(s1, 1000)
        cost_resident = ip.restore(s3, 1000)
        assert cost_evicted > cost_resident

    def test_oversized_snapshot_goes_to_host(self):
        ip = SnapshotIp(100e6, USB3, sram_bits=100)
        slot, cost = ip.save(1000)
        assert ip.resident_count == 0
        assert cost > ip.shift_cost_s(1000)

    def test_forget_frees_slot(self):
        ip = SnapshotIp(100e6, USB3, sram_bits=2500)
        s1, _ = ip.save(1000)
        ip.forget(s1)
        assert ip.resident_count == 0


class TestOrchestration:
    def _pair(self):
        targets = []
        for cls, name in ((FpgaTarget, "fpga"), (SimulatorTarget, "sim")):
            t = cls(name=name)
            t.add_peripheral(catalog.TIMER, TIMER_BASE)
            t.reset()
            targets.append(t)
        return targets

    def test_transfer_fpga_to_simulator(self):
        fpga, sim = self._pair()
        orch = TargetOrchestrator()
        orch.register(fpga, active=True)
        orch.register(sim)
        _arm_timer(fpga, 9)
        fpga.step(12)
        orch.transfer("fpga", "sim")
        assert orch.active.name == "sim"
        assert sim.peek("timer", "expired") == 1
        assert sim.read(TIMER_BASE + timer.REGISTERS["LOAD"]) == 9

    def test_transfer_back_round_trip(self):
        fpga, sim = self._pair()
        orch = TargetOrchestrator()
        orch.register(fpga, active=True)
        orch.register(sim)
        _arm_timer(fpga, 40)
        fpga.step(10)
        orch.transfer("fpga", "sim")
        sim.step(5)
        orch.transfer("sim", "fpga")
        v = fpga.read(TIMER_BASE + timer.REGISTERS["VALUE"])
        assert 0 < v < 40

    def test_mismatched_instances_rejected(self):
        orch = TargetOrchestrator()
        t1 = FpgaTarget(name="a")
        t1.add_peripheral(catalog.TIMER, TIMER_BASE)
        orch.register(t1)
        t2 = SimulatorTarget(name="b")
        t2.add_peripheral(catalog.UART, UART_BASE)
        with pytest.raises(TargetError):
            orch.register(t2)

    def test_self_transfer_rejected(self):
        fpga, sim = self._pair()
        orch = TargetOrchestrator()
        orch.register(fpga)
        with pytest.raises(TargetError):
            orch.transfer("fpga", "fpga")

    def test_active_view_follows_switch(self):
        fpga, sim = self._pair()
        orch = TargetOrchestrator()
        orch.register(fpga, active=True)
        orch.register(sim)
        view = orch.active_view()
        assert view.name == "fpga"
        _arm_timer(view, 6)
        view.step(9)
        orch.transfer("fpga", "sim")
        assert view.name == "sim"
        assert view.irq_lines()["timer"] is True

    def test_transfer_records_cost(self):
        fpga, sim = self._pair()
        orch = TargetOrchestrator()
        orch.register(fpga)
        orch.register(sim)
        orch.transfer("fpga", "sim")
        record = orch.transfers[-1]
        assert record.bits > 0 and record.modelled_cost_s > 0
