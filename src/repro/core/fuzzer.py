"""Snapshot-based coverage-guided fuzzing.

The paper motivates hardware snapshotting for fuzzers as much as for DSE
(§II, citing Muench et al.):

    "fuzzing embedded systems requires to restart the target under test
    after each fuzzing input to reset a clean state for further test
    inputs. Without HardSnap, restarting the embedded systems requires a
    complete reboot of the device which is extremely slow."

This module is that use case: a small mutational, coverage-guided fuzzer
(AFL-style: seed corpus, havoc mutations, keep inputs that reach new
edges) running firmware *concretely* against a hardware target. The
harness contract: the firmware reads its input from a fixed RAM buffer
(``INPUT_ADDR``: one length word followed by the bytes).

Two reset backends, matching Fig. 1's cost axis:

* ``reset="snapshot"`` — capture the post-boot hardware state once, then
  restore it per input (HardSnap),
* ``reset="reboot"`` — full device reset per input, charged at the
  configured reboot time (the naive baseline).

Executions per second (modelled) is the headline metric the two differ
on; the explored coverage is identical by construction.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.core.shutdown import shutdown_requested
from repro.core.snapshot import SnapshotController
from repro.errors import FirmwarePanic, VmError
from repro.resilience import ResilienceStats
from repro.isa.assembler import Program
from repro.isa.cpu import Cpu, CpuExit
from repro.targets.base import HardwareTarget, HwSnapshot

INPUT_ADDR = 0xF000
MAX_INPUT = 0x400


@dataclass
class FuzzCrash:
    """One crashing input."""

    input_bytes: bytes
    reason: str
    pc: int
    execution: int


@dataclass
class FuzzReport:
    executions: int = 0
    crashes: List[FuzzCrash] = field(default_factory=list)
    corpus_size: int = 0
    edges_covered: int = 0
    modelled_time_s: float = 0.0
    host_time_s: float = 0.0
    resets: int = 0
    #: The full covered edge set (pc → pc pairs); lets merged parallel
    #: coverage be compared bit-for-bit against a serial run.
    edge_set: FrozenSet[Tuple[int, int]] = frozenset()
    #: Recovery events over the run (kept out of
    #: :meth:`verdict_summary` — recovery cost is schedule-dependent).
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: "completed" | "interrupted" — why the loop ended. Excluded from
    #: :meth:`verdict_summary`: an interrupted-then-resumed campaign
    #: must still match the uninterrupted verdict byte for byte.
    stop_reason: str = "completed"

    @property
    def execs_per_modelled_second(self) -> float:
        if self.modelled_time_s == 0:
            return 0.0
        return self.executions / self.modelled_time_s

    def summary(self) -> str:
        return (f"[fuzz] execs={self.executions} crashes={len(self.crashes)} "
                f"corpus={self.corpus_size} edges={self.edges_covered} "
                f"modelled={self.modelled_time_s:.4f}s "
                f"({self.execs_per_modelled_second:.0f} exec/s)")

    def verdict_summary(self) -> str:
        """Schedule-independent outcome string: executions, every crash
        (global index, reason, input), and a digest of the exact edge
        set. A parallel run sharding the same batches must reproduce it
        byte-identically whatever the worker count."""
        edge_blob = ",".join(f"{a:x}>{b:x}"
                             for a, b in sorted(self.edge_set))
        digest = hashlib.blake2b(edge_blob.encode("ascii"),
                                 digest_size=8).hexdigest()
        crashes = ";".join(
            f"{c.execution}:{c.reason}@0x{c.pc:x}:{c.input_bytes.hex()}"
            for c in self.crashes)
        return (f"[fuzz] execs={self.executions} corpus={self.corpus_size} "
                f"edges={self.edges_covered}:{digest} "
                f"crashes=<{crashes}>")


# ---------------------------------------------------------------------------
# Shared harness pieces (used by the serial fuzzer and repro.parallel)
# ---------------------------------------------------------------------------

def mutate_bytes(rng: random.Random, data: bytes) -> bytes:
    """One havoc mutation round (1-4 stacked AFL-style edits)."""
    out = bytearray(data or b"\x00")
    for _ in range(rng.randint(1, 4)):
        choice = rng.randrange(5)
        if choice == 0 and out:  # bit flip
            i = rng.randrange(len(out))
            out[i] ^= 1 << rng.randrange(8)
        elif choice == 1 and out:  # byte set
            out[rng.randrange(len(out))] = rng.randrange(256)
        elif choice == 2 and len(out) < MAX_INPUT:  # insert
            out.insert(rng.randrange(len(out) + 1), rng.randrange(256))
        elif choice == 3 and len(out) > 1:  # delete
            del out[rng.randrange(len(out))]
        else:  # interesting values
            value = rng.choice([0, 1, 0x7F, 0x80, 0xFF, 0x10, 0x41])
            if out:
                out[rng.randrange(len(out))] = value
    return bytes(out)


def execute_input(program: Program, target: HardwareTarget, data: bytes,
                  max_steps: int = 20_000
                  ) -> Tuple[Optional[CpuExit], Set[Tuple[int, int]],
                             Optional[str], int]:
    """One concrete execution of *data* against live hardware; returns
    (exit, edges, crash reason, pc). Deterministic given the hardware's
    starting state — which is what lets parallel workers reproduce the
    serial fuzzer's per-input results exactly."""

    def irq_poll() -> bool:
        target.step(1)
        return any(target.irq_lines().values())

    cpu = Cpu(program, mmio_read=target.read, mmio_write=target.write,
              irq_poll=irq_poll)
    cpu.store(INPUT_ADDR, len(data), 4)
    for i, byte in enumerate(data[:MAX_INPUT]):
        cpu.store(INPUT_ADDR + 4 + i, byte, 1)
    edges: Set[Tuple[int, int]] = set()
    last_pc = cpu.pc
    try:
        while cpu.steps < max_steps:
            exit_ = cpu.step()
            edges.add((last_pc, cpu.pc))
            last_pc = cpu.pc
            if exit_ is not None:
                return exit_, edges, None, cpu.pc
        return None, edges, None, cpu.pc  # hang: treated as non-crash
    except FirmwarePanic as exc:
        return None, edges, str(exc), cpu.pc


class CorpusScheduler:
    """The fuzzer's *deterministic* half: mutation scheduling and the
    corpus/coverage update rule, with no hardware attached.

    Batches are generated up front from the current RNG stream and
    corpus, and results merge back **in input order** — so the final
    corpus, edge set and crash list depend only on (seeds, rng seed,
    batch size), never on which worker executed which input or when.
    Each input's execution is corpus-independent (every run starts from
    the same post-boot snapshot), which is what makes the batch/merge
    split sound.
    """

    def __init__(self, seeds: Optional[List[bytes]] = None, seed: int = 0):
        self.rng = random.Random(seed)
        self.corpus: List[bytes] = list(seeds or [b"\x00"])
        self.edges: Set[Tuple[int, int]] = set()

    def next_batch(self, count: int) -> List[bytes]:
        """The next *count* inputs of the mutation schedule."""
        return [mutate_bytes(self.rng, self.rng.choice(self.corpus))
                for _ in range(count)]

    def state_dict(self) -> dict:
        """The scheduler's complete resumable state (picklable). A
        scheduler restored from this dict generates byte-identical
        future batches — the anchor of journal checkpoint/resume."""
        return {"rng": self.rng.getstate(),
                "corpus": list(self.corpus),
                "edges": set(self.edges)}

    def restore_state(self, state: dict) -> None:
        self.rng.setstate(state["rng"])
        self.corpus = list(state["corpus"])
        self.edges = set(state["edges"])

    def merge(self, report: FuzzReport, data: bytes,
              edges: Set[Tuple[int, int]], crash: Optional[str],
              pc: int, index: int) -> None:
        """Apply one execution's result (the serial update rule)."""
        report.executions += 1
        if crash is not None:
            report.crashes.append(FuzzCrash(data, crash, pc, index))
            return
        new_edges = edges - self.edges
        if new_edges:
            self.edges |= edges
            self.corpus.append(data)

    def finalize(self, report: FuzzReport) -> None:
        report.corpus_size = len(self.corpus)
        report.edges_covered = len(self.edges)
        report.edge_set = frozenset(self.edges)


class SnapshotFuzzer:
    """Mutational coverage-guided fuzzer over a hardware target."""

    def __init__(self, program: Program, target: HardwareTarget,
                 seeds: Optional[List[bytes]] = None,
                 reset: str = "snapshot",
                 reboot_time_s: float = 0.25,
                 max_steps_per_exec: int = 20_000,
                 seed: int = 0):
        if reset not in ("snapshot", "reboot"):
            raise VmError(f"unknown reset mode {reset!r}")
        self.program = program
        self.target = target
        self.reset_mode = reset
        self.reboot_time_s = reboot_time_s
        self.max_steps = max_steps_per_exec
        self.scheduler = CorpusScheduler(seeds, seed)
        # Snapshots go through the controller so the boot image lands in
        # the content-addressed store (per-input restores dedup to it).
        self.controller = SnapshotController(target)
        self._boot_snapshot: Optional[HwSnapshot] = None

    # The mutation/coverage state lives on the scheduler; these aliases
    # keep the original public attributes working.
    @property
    def rng(self) -> random.Random:
        return self.scheduler.rng

    @property
    def corpus(self) -> List[bytes]:
        return self.scheduler.corpus

    @property
    def edges(self) -> Set[Tuple[int, int]]:
        return self.scheduler.edges

    # -- harness -----------------------------------------------------------

    def _fresh_hardware(self) -> None:
        """Bring the hardware to the clean post-boot state."""
        if self.reset_mode == "reboot":
            self.target.reset()
            self.target.timer.add_fixed(self.reboot_time_s)
            return
        if self._boot_snapshot is None:
            self.controller.reset()
            self._boot_snapshot = self.controller.save()
        else:
            self.controller.restore(self._boot_snapshot)

    def _execute(self, data: bytes) -> Tuple[Optional[CpuExit],
                                             Set[Tuple[int, int]],
                                             Optional[str], int]:
        """One concrete execution; returns (exit, edges, crash reason, pc)."""
        return execute_input(self.program, self.target, data,
                             max_steps=self.max_steps)

    # -- mutation ------------------------------------------------------------------

    def _mutate(self, data: bytes) -> bytes:
        return mutate_bytes(self.rng, data)

    # -- main loop -------------------------------------------------------------------

    def run(self, executions: int = 200, batch_size: int = 1) -> FuzzReport:
        """Fuzz for *executions* inputs.

        ``batch_size`` sets the mutation scheduling granularity: each
        round generates a whole batch from the current corpus before any
        of its results merge back. The default of 1 is the classic
        serial schedule; a parallel run with the same ``batch_size``
        (and seeds/seed) reproduces this run's crashes, corpus and edge
        set exactly, whatever its worker count.
        """
        import time
        report = FuzzReport()
        start = time.perf_counter()
        modelled_start = self.target.timer.total_s
        resilience0 = (self.target.resilience.as_dict()
                       if getattr(self.target, "resilience", None) else None)
        done = 0
        while done < executions:
            if shutdown_requested():
                report.stop_reason = "interrupted"
                break
            batch = self.scheduler.next_batch(
                min(max(1, batch_size), executions - done))
            for data in batch:
                self._fresh_hardware()
                report.resets += 1
                exit_, edges, crash, pc = self._execute(data)
                self.scheduler.merge(report, data, edges, crash, pc, done)
                done += 1
        self.scheduler.finalize(report)
        report.host_time_s = time.perf_counter() - start
        report.modelled_time_s = self.target.timer.total_s - modelled_start
        if resilience0 is not None:
            report.resilience.merge(
                self.target.resilience.delta(resilience0))
        return report
