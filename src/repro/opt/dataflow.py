"""Def-use indexing and forward constant propagation over a design.

:class:`DefUse` is a one-pass structural index: which processes write
each net, which read it, and how many :class:`~repro.hdl.ir.Ref` sites
it has.  :func:`constant_map` runs the whole-design forward analysis on
top of the bit lattice: inputs are unknown, every other net starts at
its reset/initial value, and processes are abstractly executed to a
fixpoint.  The result maps each net to the bits that hold the same
value at *every* observable instant — exactly the bits the optimizer
may fold and the lint rules may report as provably constant.

Soundness notes:

* memories are never tracked (every read returns unknown),
* inputs (including the clock and the scan-chain pins of instrumented
  designs) are unknown, so anything externally drivable stays unknown,
* sequential updates *join* into the net's invariant — the pre-edge
  value remains observable between edges,
* a bounded widening pass guarantees termination: nets still changing
  after several sweeps are pinned to fully-unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hdl import ir
from repro.opt.lattice import BitsVal, eval_expr, join, of_const, top
from repro.sim.scheduler import order_comb_blocks

#: Sweeps before still-unstable nets are widened to fully-unknown.
_WIDEN_AFTER = 12
#: Hard bound on fixpoint sweeps (widening converges well before this).
_MAX_SWEEPS = 48


# ---------------------------------------------------------------------------
# Def-use index
# ---------------------------------------------------------------------------

@dataclass
class NetUses:
    writers_comb: List[ir.CombBlock] = field(default_factory=list)
    writers_seq: List[ir.SeqBlock] = field(default_factory=list)
    writers_init: List[ir.InitBlock] = field(default_factory=list)
    readers: List[object] = field(default_factory=list)  # blocks reading it
    ref_sites: int = 0  # number of Ref/index expressions mentioning it


class DefUse:
    """Structural def-use summary of a design."""

    def __init__(self, design: ir.Design):
        self.design = design
        self.nets: Dict[str, NetUses] = {name: NetUses()
                                         for name in design.nets}
        self.mem_readers: Dict[str, int] = {name: 0
                                            for name in design.memories}
        self.mem_writers: Dict[str, int] = {name: 0
                                            for name in design.memories}
        for block in design.comb_blocks:
            self._scan_block(block, block.stmts, "comb")
        for block in design.seq_blocks:
            self._scan_block(block, block.stmts, "seq")
        for block in design.init_blocks:
            self._scan_block(block, block.stmts, "init")

    def _scan_block(self, block, stmts, kind: str) -> None:
        reads, writes = ir.stmt_reads_writes(stmts)
        for name in writes:
            if name in self.nets:
                if kind == "comb":
                    self.nets[name].writers_comb.append(block)
                elif kind == "seq":
                    self.nets[name].writers_seq.append(block)
                else:
                    self.nets[name].writers_init.append(block)
            elif name in self.mem_writers:
                self.mem_writers[name] += 1
        for name in reads:
            if name in self.nets:
                self.nets[name].readers.append(block)
            elif name in self.mem_readers:
                self.mem_readers[name] += 1
        for stmt in ir._walk_stmts(stmts):
            for expr in _stmt_exprs(stmt):
                self._count_refs(expr)

    def _count_refs(self, expr: ir.Expr) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ir.Ref):
                self.nets[node.net.name].ref_sites += 1
            elif isinstance(node, ir.MemRead):
                self.mem_readers[node.memory.name] += 1
                stack.append(node.index)
            elif isinstance(node, ir.Unary):
                stack.append(node.operand)
            elif isinstance(node, ir.Binary):
                stack.extend((node.left, node.right))
            elif isinstance(node, ir.Ternary):
                stack.extend((node.cond, node.then, node.other))
            elif isinstance(node, ir.Concat):
                stack.extend(node.parts)
            elif isinstance(node, (ir.Slice, ir.DynBit)):
                stack.append(node.value)
                if isinstance(node, ir.DynBit):
                    stack.append(node.index)


def _stmt_exprs(stmt: ir.Stmt):
    """Every expression appearing directly in *stmt* (not nested stmts)."""
    if isinstance(stmt, ir.SAssign):
        yield stmt.value
        for lv in ir._leaf_lvalues(stmt.target):
            if isinstance(lv, (ir.LNetDyn, ir.LMem)):
                yield lv.index
    elif isinstance(stmt, ir.SIf):
        yield stmt.cond
    elif isinstance(stmt, ir.SCase):
        yield stmt.subject


# ---------------------------------------------------------------------------
# Forward constant propagation
# ---------------------------------------------------------------------------

class _AbstractExec:
    """Abstract interpreter for one process, over a shared environment."""

    def __init__(self, env: Dict[str, BitsVal], pinned: set):
        self.env = env
        self.pinned = pinned  # nets forced to stay unknown (inputs, widened)
        self.overlay: Dict[str, BitsVal] = {}

    def lookup(self, name: str) -> BitsVal:
        if name in self.overlay:
            return self.overlay[name]
        return self.env[name]

    # -- statement walk ----------------------------------------------------

    def run(self, stmts: List[ir.Stmt], updates: Dict[str, BitsVal]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ir.SAssign):
                value = eval_expr(stmt.value, self.lookup)
                self._write(stmt.target, value, updates,
                            blocking=stmt.blocking)
            elif isinstance(stmt, ir.SIf):
                cond = eval_expr(stmt.cond, self.lookup)
                if cond.known_nonzero:
                    self.run(stmt.then, updates)
                elif cond.known_zero:
                    self.run(stmt.other, updates)
                else:
                    self._run_branches([stmt.then, stmt.other], updates)
            elif isinstance(stmt, ir.SCase):
                subject = eval_expr(stmt.subject, self.lookup)
                bodies = []
                matched = False
                for item in stmt.items:
                    hit, maybe = _labels_match(subject, item.labels)
                    if hit:
                        bodies.append(item.body)
                        matched = True
                        break
                    if maybe:
                        bodies.append(item.body)
                if not matched:
                    bodies.append(stmt.default)
                if len(bodies) == 1:
                    self.run(bodies[0], updates)
                else:
                    self._run_branches(bodies, updates)

    def _run_branches(self, bodies, updates: Dict[str, BitsVal]) -> None:
        snapshots: List[Tuple[Dict[str, BitsVal], Dict[str, BitsVal]]] = []
        base_overlay = dict(self.overlay)
        base_updates = dict(updates)
        for body in bodies:
            self.overlay = dict(base_overlay)
            branch_updates = dict(base_updates)
            self.run(body, branch_updates)
            snapshots.append((self.overlay, branch_updates))
        # A net missing from a branch's dict was not written there: its
        # observable value is the (pre-branch, pre-edge) environment one.
        fallback = self.env.__getitem__
        self.overlay = _join_dicts([s[0] for s in snapshots],
                                   base_overlay, fallback)
        merged = _join_dicts([s[1] for s in snapshots],
                             base_updates, fallback)
        updates.clear()
        updates.update(merged)

    # -- abstract writes ---------------------------------------------------

    def _write(self, target: ir.LValue, value: BitsVal,
               updates: Dict[str, BitsVal], blocking: bool) -> None:
        if isinstance(target, ir.LConcat):
            offset = 0
            for part in reversed(target.parts):
                piece_known = (value.known >> offset) & ((1 << part.width) - 1)
                piece_value = (value.value >> offset) & piece_known
                piece = BitsVal(part.width, piece_known, piece_value)
                self._write(part, piece, updates, blocking)
                offset += part.width
            return
        store = self.overlay if blocking else updates
        if isinstance(target, ir.LNet):
            name = target.net.name
            if name in self.pinned:
                return
            current = store.get(name)
            if current is None:
                # Non-blocking partial writes merge against the pre-edge
                # value; blocking ones against the running overlay/env.
                current = (self.env[name] if not blocking
                           else self.lookup(name))
            if target.hi is None:
                new = value.zext(target.net.width)
            else:
                width = target.hi - target.lo + 1
                sel = ((1 << width) - 1) << target.lo
                piece = value.zext(width)
                known = ((current.known & ~sel)
                         | ((piece.known << target.lo) & sel))
                val = ((current.value & ~sel)
                       | ((piece.value << target.lo) & sel))
                new = BitsVal(target.net.width, known & current.mask,
                              val & known & current.mask)
            store[name] = new
        elif isinstance(target, ir.LNetDyn):
            name = target.net.name
            if name in self.pinned:
                return
            current = store.get(name)
            if current is None:
                current = (self.env[name] if not blocking
                           else self.lookup(name))
            bit = value.zext(1)
            # One (unknown) bit becomes ``bit``; every bit individually is
            # either its old value or ``bit``, so join per bit.
            if bit.known:
                rep = BitsVal(current.width, current.mask,
                              current.mask if bit.value else 0)
                store[name] = join(current, rep)
            else:
                store[name] = top(current.width)
        elif isinstance(target, ir.LMem):
            pass  # memories are not tracked


def _join_dicts(dicts: List[Dict[str, BitsVal]], base: Dict[str, BitsVal],
                fallback) -> Dict[str, BitsVal]:
    keys = set()
    for d in dicts:
        keys.update(d)
    out = dict(base)
    for key in keys:
        values = []
        for d in dicts:
            if key in d:
                values.append(d[key])
            elif key in base:
                values.append(base[key])
            else:
                values.append(fallback(key))
        acc = values[0]
        for v in values[1:]:
            acc = join(acc, v)
        out[key] = acc
    return out


def _labels_match(subject: BitsVal, labels) -> Tuple[bool, bool]:
    """(definitely matches, possibly matches) for a case item's labels.

    Mirrors the interpreter: a label ``(value, care)`` hits when
    ``(subject & care) == value``.
    """
    definite = False
    possible = False
    for value, care in labels:
        conflict = (subject.value ^ value) & care & subject.known
        if conflict:
            continue  # a known subject bit contradicts the label
        possible = True
        if (care & ~subject.known) == 0:
            definite = True
    return definite, possible


def constant_map(design: ir.Design,
                 extra_unknown: Tuple[str, ...] = ()) -> Dict[str, BitsVal]:
    """Map every net to the bits provably constant at all observable
    instants.  ``extra_unknown`` pins additional nets to unknown (used
    when a caller plans to poke non-input nets)."""
    pinned = {net.name for net in design.inputs}
    pinned.update(extra_unknown)
    env: Dict[str, BitsVal] = {}
    for name, net in design.nets.items():
        if name in pinned:
            env[name] = top(net.width)
        else:
            env[name] = of_const(net.initial, net.width)

    try:
        ordered_comb = order_comb_blocks(design)
    except Exception:
        ordered_comb = list(design.comb_blocks)

    for block in design.init_blocks:
        ex = _AbstractExec(env, pinned)
        updates: Dict[str, BitsVal] = {}
        ex.run(block.stmts, updates)
        for name, value in ex.overlay.items():
            env[name] = value
        for name, value in updates.items():
            env[name] = value

    for sweep in range(_MAX_SWEEPS):
        changed: set = set()
        for block in ordered_comb:
            ex = _AbstractExec(env, pinned)
            updates = {}
            ex.run(block.stmts, updates)
            ex.overlay.update(updates)  # comb stmts are blocking anyway
            for name, value in ex.overlay.items():
                if name in pinned:
                    continue
                # The join-with-previous machinery inside branch merges
                # already accounts for not-taken paths, so a straight
                # update is sound here; still-oscillating nets are caught
                # by the widening pass below.
                if env[name] != value:
                    env[name] = value
                    changed.add(name)
        for block in design.seq_blocks:
            ex = _AbstractExec(env, pinned)
            updates = {}
            ex.run(block.stmts, updates)
            for name, value in ex.overlay.items():
                updates[name] = (join(updates[name], value)
                                 if name in updates else value)
            for name, value in updates.items():
                if name in pinned:
                    continue
                new = join(env[name], value)
                if env[name] != new:
                    env[name] = new
                    changed.add(name)
        if not changed:
            break
        if sweep >= _WIDEN_AFTER:
            for name in changed:
                env[name] = top(design.nets[name].width)
                pinned.add(name)
    return env
