"""Shared AXI4-Lite slave scaffold for the peripheral corpus.

Every corpus peripheral is a single Verilog module with the same bus
front-end: a handshake state machine for the five AXI4-Lite channels that
exposes four events/buses to the peripheral core logic::

    bus_wr     1-cycle pulse: a write (address+data) completed
    bus_waddr  byte address of the write
    bus_wdata  32-bit write data
    bus_rd     1-cycle pulse: a read address was accepted
    bus_raddr  byte address of the read

The core provides a combinational read mux driving ``rd_data``; the
skeleton registers it into ``s_axi_rdata`` when the read is accepted.
Read side effects (FIFO pops, read-to-clear flags) key off ``bus_rd``.

This mirrors how real register-file generators (and the OpenCores
peripherals HardSnap built on) structure an AXI4-Lite slave, and keeps
each peripheral's interesting logic front and centre.
"""

from __future__ import annotations

from typing import Optional, Sequence


def axi_module(name: str, core_body: str, addr_bits: int = 8,
               extra_ports: Sequence[str] = (),
               params: Optional[str] = None) -> str:
    """Assemble a complete AXI4-Lite slave module around *core_body*.

    *core_body* must declare ``reg [31:0] rd_data;`` logic (an
    ``always @(*)`` mux over ``bus_raddr``) and may use the ``bus_*``
    events freely. *extra_ports* are raw port declaration strings, e.g.
    ``"output wire irq"``.
    """
    ports = [
        "input wire clk",
        "input wire rst",
        "input wire s_axi_awvalid",
        "output reg s_axi_awready",
        f"input wire [{addr_bits - 1}:0] s_axi_awaddr",
        "input wire s_axi_wvalid",
        "output reg s_axi_wready",
        "input wire [31:0] s_axi_wdata",
        "output reg s_axi_bvalid",
        "input wire s_axi_bready",
        "input wire s_axi_arvalid",
        "output reg s_axi_arready",
        f"input wire [{addr_bits - 1}:0] s_axi_araddr",
        "output reg s_axi_rvalid",
        "input wire s_axi_rready",
        "output reg [31:0] s_axi_rdata",
    ]
    ports.extend(extra_ports)
    port_text = ",\n    ".join(ports)
    param_text = f" #(\n    {params}\n)" if params else ""
    return f"""
module {name}{param_text} (
    {port_text}
);
    // ---- AXI4-Lite write channel handshake ----
    reg [{addr_bits - 1}:0] awaddr_q;
    reg [31:0] wdata_q;
    reg aw_got;
    reg w_got;
    wire bus_wr;
    wire [{addr_bits - 1}:0] bus_waddr;
    wire [31:0] bus_wdata;
    assign bus_wr = aw_got && w_got;
    assign bus_waddr = awaddr_q;
    assign bus_wdata = wdata_q;

    always @(posedge clk) begin
        if (rst) begin
            s_axi_awready <= 1'b1;
            s_axi_wready <= 1'b1;
            s_axi_bvalid <= 1'b0;
            aw_got <= 1'b0;
            w_got <= 1'b0;
            awaddr_q <= 0;
            wdata_q <= 0;
        end else begin
            if (s_axi_awvalid && s_axi_awready) begin
                awaddr_q <= s_axi_awaddr;
                aw_got <= 1'b1;
                s_axi_awready <= 1'b0;
            end
            if (s_axi_wvalid && s_axi_wready) begin
                wdata_q <= s_axi_wdata;
                w_got <= 1'b1;
                s_axi_wready <= 1'b0;
            end
            if (bus_wr) begin
                aw_got <= 1'b0;
                w_got <= 1'b0;
                s_axi_bvalid <= 1'b1;
            end
            if (s_axi_bvalid && s_axi_bready) begin
                s_axi_bvalid <= 1'b0;
                s_axi_awready <= 1'b1;
                s_axi_wready <= 1'b1;
            end
        end
    end

    // ---- AXI4-Lite read channel handshake ----
    wire bus_rd;
    wire [{addr_bits - 1}:0] bus_raddr;
    assign bus_rd = s_axi_arvalid && s_axi_arready;
    assign bus_raddr = s_axi_araddr;

    always @(posedge clk) begin
        if (rst) begin
            s_axi_arready <= 1'b1;
            s_axi_rvalid <= 1'b0;
            s_axi_rdata <= 0;
        end else begin
            if (bus_rd) begin
                s_axi_arready <= 1'b0;
                s_axi_rvalid <= 1'b1;
                s_axi_rdata <= rd_data;
            end
            if (s_axi_rvalid && s_axi_rready) begin
                s_axi_rvalid <= 1'b0;
                s_axi_arready <= 1'b1;
            end
        end
    end

    // ---- peripheral core ----
{core_body}
endmodule
"""
