"""Differential fuzzing of the whole RTL pipeline on random designs.

For each generated design (see :mod:`tests.rtl_fuzz`):

1. interpreter vs compiled backend — identical values after identical
   random stimulus,
2. emit -> reparse -> elaborate — behaviour preserved,
3. scan-chain instrumentation with scan_enable low — behaviour
   preserved, and a scan save/restore round trip reproduces the state.
"""

import random

import pytest

from repro.hdl import elaborate
from repro.instrument import emit_verilog, insert_scan_chain
from repro.instrument.scan_chain import SCAN_ENABLE, SCAN_IN, SCAN_OUT
from repro.errors import InstrumentationError
from repro.sim import CompiledSimulation, Interpreter
from tests.rtl_fuzz import DesignGen

SEEDS = list(range(14))


def _stimulate(sims, inputs, outputs, seed, cycles=25):
    rng = random.Random(seed ^ 0x5EED)
    for sim in sims:
        sim.poke("rst", 1)
        sim.step(2)
        sim.poke("rst", 0)
    for _ in range(cycles):
        pokes = {}
        for name, width in inputs:
            if name == "rst":
                if rng.random() < 0.05:
                    pokes[name] = rng.randrange(2)
                continue
            if rng.random() < 0.5:
                pokes[name] = rng.randrange(1 << min(width, 16))
        for sim in sims:
            if pokes:
                sim.poke_many(pokes)
            sim.step()
        head = sims[0]
        for other in sims[1:]:
            for out in outputs:
                assert head.peek(out) == other.peek(out), out


@pytest.mark.parametrize("seed", SEEDS)
def test_backend_equivalence_on_random_design(seed):
    source, inputs, outputs = DesignGen(seed).generate()
    design = elaborate(source, "fuzzed")
    sims = [Interpreter(design), CompiledSimulation(design)]
    _stimulate(sims, inputs, outputs, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_emit_roundtrip_on_random_design(seed):
    source, inputs, outputs = DesignGen(seed).generate()
    design = elaborate(source, "fuzzed")
    redesign = elaborate(emit_verilog(design), "fuzzed")
    sims = [Interpreter(design), Interpreter(redesign)]
    _stimulate(sims, inputs, outputs, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_scan_insertion_preserves_function(seed):
    source, inputs, outputs = DesignGen(seed).generate()
    design = elaborate(source, "fuzzed")
    try:
        scan = insert_scan_chain(design)
    except InstrumentationError:
        pytest.skip("generated design has no state elements")
    original = Interpreter(design)
    instrumented = Interpreter(scan.design)
    instrumented.poke(SCAN_ENABLE, 0)
    _stimulate([original, instrumented], inputs, outputs, seed)
    # Scan round trip on the instrumented design: capture, clobber via
    # shifting zeros, then restore and compare chain element values.
    sim = instrumented
    length = scan.chain_length
    stream = 0
    sim.poke(SCAN_ENABLE, 1)
    for k in range(length):
        stream |= sim.peek(SCAN_OUT) << k
        sim.poke(SCAN_IN, 0)
        sim.step()
    # State now zeroed along the chain; shift the captured stream back.
    for k in range(length):
        sim.poke(SCAN_IN, (stream >> k) & 1)
        sim.step()
    sim.poke(SCAN_ENABLE, 0)
    nets, mems = scan.unpack(stream)
    for name, value in nets.items():
        assert sim.peek(name) == value, name
    for name, words in mems.items():
        for i, value in words.items():
            assert sim.peek_memory(name, i) == value, (name, i)
