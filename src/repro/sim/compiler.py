"""Compiled RTL simulator backend.

The design is translated once into Python source (one ``settle`` function
for the combinational logic in dependency order, one ``edge`` function for
the sequential logic with buffered non-blocking commits) and ``exec``-ed.
Dispatch, statement walking and width bookkeeping all happen at compile
time, so the generated code runs an order of magnitude faster than the
tree-walking :class:`~repro.sim.interpreter.Interpreter`.

In HardSnap terms this backend is the *FPGA emulation target*: fast, but
with no per-cycle tracing — the only state access paths the
:class:`~repro.targets.fpga.FpgaTarget` exposes on top of it are the scan
chain and the readback model, exactly like real fabric.

The generated code maintains the same invariant as the interpreter: every
stored value is already masked to its net's width.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hdl import ir
from repro.sim.base import BaseSimulation
from repro.sim.scheduler import clock_domain, order_comb_blocks


# ---------------------------------------------------------------------------
# Design fingerprinting and the compiled-artifact cache
# ---------------------------------------------------------------------------
#
# Optimising + code-generating + byte-compiling a design is by far the most
# expensive part of constructing a CompiledSimulation, and callers rebuild
# simulations for the *same* design all the time: every benchmark variant,
# every strategy in run_all_strategies, every parallel worker booting the
# same target. The cache below keys compiled artifacts on a content hash of
# the IR, so only the first construction pays for run_opt/codegen/compile.

#: Fields that never affect generated code — source bookkeeping only.
_FP_SKIP_FIELDS = frozenset({"line", "source_file"})


def _fp_walk(obj: Any, emit) -> None:
    """Feed a canonical byte encoding of an IR object tree to *emit*.

    Generic recursive walk over the dataclass nodes of
    :mod:`repro.hdl.ir`: class names delimit structure, scalar fields are
    encoded with type tags, and dict/set containers are visited in sorted
    key order so iteration order cannot leak into the fingerprint.
    """
    if obj is None:
        emit(b"~")
    elif obj is True:
        emit(b"T")
    elif obj is False:
        emit(b"F")
    elif isinstance(obj, int):
        emit(b"i%d;" % obj)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        emit(b"s%d:" % len(data))
        emit(data)
    elif isinstance(obj, (list, tuple)):
        emit(b"[")
        for item in obj:
            _fp_walk(item, emit)
        emit(b"]")
    elif isinstance(obj, (set, frozenset)):
        emit(b"{")
        for item in sorted(obj):
            _fp_walk(item, emit)
        emit(b"}")
    elif isinstance(obj, dict):
        emit(b"<")
        for key in sorted(obj):
            _fp_walk(key, emit)
            _fp_walk(obj[key], emit)
        emit(b">")
    elif dataclasses.is_dataclass(obj):
        emit(type(obj).__name__.encode("ascii"))
        emit(b"(")
        for f in dataclasses.fields(obj):
            if f.name not in _FP_SKIP_FIELDS:
                _fp_walk(getattr(obj, f.name), emit)
        emit(b")")
    else:
        raise SimulationError(
            f"cannot fingerprint {type(obj).__name__!r} in design IR")


def design_fingerprint(design: ir.Design) -> str:
    """Content hash of an elaborated design.

    Two designs with identical structure (nets, memories, processes,
    expressions — everything the code generator consumes) fingerprint
    identically regardless of object identity or source location.
    """
    digest = hashlib.blake2b(digest_size=16)
    _fp_walk(design, digest.update)
    return digest.hexdigest()


@dataclasses.dataclass
class _CompiledArtifact:
    """Everything construction-time work produces for one (design, clock,
    opt) combination. ``design`` is the post-optimisation design when
    opt was requested — it is shared read-only between simulations."""

    design: ir.Design
    source: str
    code: Any
    has_negedge: bool
    opt_report: Any


_ARTIFACT_CACHE: Dict[Tuple[str, str, bool], _CompiledArtifact] = {}
_ARTIFACT_CACHE_LIMIT = 64
_CACHE_STATS = {"hits": 0, "misses": 0}


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss counters plus current entry count (diagnostics/tests)."""
    return {**_CACHE_STATS, "entries": len(_ARTIFACT_CACHE)}


def clear_compile_cache() -> None:
    """Drop all cached artifacts and reset the counters."""
    _ARTIFACT_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


class CompiledSimulation(BaseSimulation):
    """Cycle-based simulation through generated Python code.

    With ``opt=True`` the design first runs through the
    :mod:`repro.opt` netlist optimizer (constant folding, dead-logic
    elimination, single-use wire fusion — all state elements and ports
    preserved) and the code generator switches to its fast scheme:
    combinational and flip-flop values live in function locals instead
    of dict slots for the duration of ``settle``/``edge``, and whole
    multi-cycle runs execute inside one generated ``run`` loop. The
    optimization report is exposed as :attr:`opt_report`.
    """

    def __init__(self, design: ir.Design, clock: str = "clk",
                 opt: bool = False):
        self.opt = opt
        key = (design_fingerprint(design), clock, opt)
        artifact = _ARTIFACT_CACHE.get(key)
        if artifact is None:
            _CACHE_STATS["misses"] += 1
            opt_report = None
            if opt:
                from repro.opt import run_opt
                result = run_opt(design, clock)
                design = result.design
                opt_report = result.report
            gen = _CodeGen(design, clock, fast=opt)
            source = gen.generate()
            code = compile(source, f"<compiled:{design.name}>", "exec")
            artifact = _CompiledArtifact(
                design=design, source=source, code=code,
                has_negedge=gen.has_negedge, opt_report=opt_report)
            if len(_ARTIFACT_CACHE) >= _ARTIFACT_CACHE_LIMIT:
                _ARTIFACT_CACHE.pop(next(iter(_ARTIFACT_CACHE)))
            _ARTIFACT_CACHE[key] = artifact
        else:
            _CACHE_STATS["hits"] += 1
        self.opt_report = artifact.opt_report
        self.source = artifact.source
        namespace: Dict[str, object] = {}
        exec(artifact.code, namespace)  # noqa: S102 - generated from our IR
        self._settle_fn = namespace["settle"]
        self._edge_fn = namespace["edge"]
        self._edge_neg_fn = namespace["edge_neg"]
        self._init_fn = namespace["init"]
        self._run_fn = namespace.get("run")
        self._has_negedge = artifact.has_negedge
        super().__init__(artifact.design, clock)

    def step(self, cycles: int = 1) -> None:
        # Fast path: one call into the generated loop.  Worth taking
        # even for a single cycle — the fused loop's hoisted locals beat
        # the per-phase dict traffic of settle/edge, and single-cycle
        # stepping is exactly what the fuzzer's interrupt-poll hook
        # does.  The base implementation stays authoritative whenever
        # anything wants per-cycle hooks (VCD sampling, negedge
        # evaluation).
        if (self._run_fn is None or cycles < 1 or self._has_negedge
                or self._vcd is not None):
            super().step(cycles)
            return
        self.state_version += 1
        self._run_fn(self.values, self.memories, cycles)
        self.cycle += cycles

    def _run_init_blocks(self) -> None:
        self._init_fn(self.values, self.memories)

    def _settle(self) -> None:
        self._settle_fn(self.values, self.memories)

    def _clock_edge(self) -> None:
        self._edge_fn(self.values, self.memories)

    def _clock_negedge(self) -> None:
        self._edge_neg_fn(self.values, self.memories)


class _CodeGen:
    def __init__(self, design: ir.Design, clock: str, fast: bool = False):
        self.design = design
        self.clock = clock
        self.fast = fast
        self.lines: List[str] = []
        self.indent = 0
        self.temp_count = 0
        self.has_negedge = False
        #: net name -> local variable text, active while generating the
        #: fused ``run`` loop; None elsewhere.
        self.vmap: Optional[Dict[str, str]] = None
        self.run_sentinel_at = 0
        self.run_sentinel_indent = 0

    # -- emit helpers ---------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def fresh(self, hint: str = "t") -> str:
        self.temp_count += 1
        return f"_{hint}{self.temp_count}"

    # -- top level ----------------------------------------------------------------

    def generate(self) -> str:
        self.lines = []
        self._gen_init()
        self._gen_settle()
        self._gen_edge("edge", "posedge")
        self._gen_edge("edge_neg", "negedge")
        if self.fast:
            self._gen_run()
        return "\n".join(self.lines) + "\n"

    def _gen_run(self) -> None:
        """Fused multi-cycle loop.

        Every net value is hoisted into a Python local before the loop
        and stored back after it, so the hot path (posedge + settle per
        iteration, same ordering as :meth:`BaseSimulation.step`) runs
        entirely on ``LOAD_FAST``/``STORE_FAST`` — no dict traffic.
        Inputs cannot change mid-run (pokes happen between calls), and
        the VCD / negedge cases never reach this path.
        """
        self.emit("def run(V, M, n):")
        self.indent += 1
        names = sorted(self.design.nets)
        self.vmap = {name: f"_v{i}" for i, name in enumerate(names)}
        for name in names:
            self.emit(f"{self.vmap[name]} = V[{name!r}]")
        self.emit("for _ in range(n):")
        self.indent += 1
        self.emit(f"{self.vmap[self.clock]} = 1")
        self.run_sentinel_at = len(self.lines)
        self.run_sentinel_indent = self.indent
        self._gen_run_edge()
        self.emit(f"{self.vmap[self.clock]} = 0")
        ctx = _RunCombCtx(self, self.vmap)
        for block in order_comb_blocks(self.design):
            ctx.gen_stmts(block.stmts)
        self.indent -= 1
        for name in names:
            self.emit(f"V[{name!r}] = {self.vmap[name]}")
        self.indent -= 1
        self.emit("")
        self.vmap = None

    def _gen_run_edge(self) -> None:
        domain = clock_domain(self.design, self.clock)
        blocks = [b for b in self.design.seq_blocks
                  if b.clock.name in domain and b.clock_edge == "posedge"]
        if not blocks:
            return
        commits: List[str] = []
        nb_nets = sorted({name for b in blocks
                          for name in _nonblocking_net_writes(b.stmts)})
        nb_map = {name: f"_s{i}" for i, name in enumerate(nb_nets)}
        for name, local in nb_map.items():
            self.emit(f"{local} = {self.vmap[name]}")
        for block in blocks:
            blocking = _blocking_net_writes(block.stmts)
            local_map = {}
            if blocking:
                local_map = {name: self.fresh("l")
                             for name in sorted(blocking)}
                for name, local in local_map.items():
                    self.emit(f"{local} = {self.vmap[name]}")
            ctx = _RunSeqCtx(self, commits, local_map, nb_map)
            ctx.gen_stmts(block.stmts)
            for name, local in local_map.items():
                net = self.design.nets[name]
                commits.append(f"{self.vmap[name]} = {local} & {net.mask}")
        for line in commits:
            self.emit(line)
        for name, local in nb_map.items():
            self.emit(f"{self.vmap[name]} = {local}")

    def _gen_init(self) -> None:
        self.emit("def init(V, M):")
        self.indent += 1
        body_emitted = False
        for block in self.design.init_blocks:
            self._gen_stmts_direct(block.stmts)
            body_emitted = True
        if not body_emitted:
            self.emit("pass")
        self.indent -= 1
        self.emit("")

    def _gen_settle(self) -> None:
        self.emit("def settle(V, M):")
        self.indent += 1
        ordered = order_comb_blocks(self.design)
        if not ordered:
            self.emit("pass")
        elif self.fast:
            # Every comb-written net lives in a local for the whole
            # settle: loaded once, updated in dependency order, stored
            # back unconditionally.  Initialising from V preserves
            # read-modify-write and latched bits exactly like the
            # direct scheme (V holds last settle's value).
            written = sorted({name for b in ordered for name in b.writes
                              if name in self.design.nets})
            local_map = {name: f"_c{i}" for i, name in enumerate(written)}
            for name, local in local_map.items():
                self.emit(f"{local} = V[{name!r}]")
            ctx = _FastCombCtx(self, local_map)
            for block in ordered:
                ctx.gen_stmts(block.stmts)
            for name, local in local_map.items():
                self.emit(f"V[{name!r}] = {local}")
        else:
            for block in ordered:
                self._gen_stmts_direct(block.stmts)
        self.indent -= 1
        self.emit("")

    def _gen_edge(self, fn_name: str, edge: str) -> None:
        self._edge_fn_name = fn_name
        self.emit(f"def {fn_name}(V, M):")
        self.indent += 1
        domain = clock_domain(self.design, self.clock)
        blocks = [b for b in self.design.seq_blocks
                  if b.clock.name in domain and b.clock_edge == edge]
        if edge == "negedge" and blocks:
            self.has_negedge = True
        if not blocks:
            self.emit("pass")
            self.indent -= 1
            self.emit("")
            return
        commits: List[str] = []
        nb_map: Dict[str, str] = {}
        if self.fast:
            # Shared write-locals: every non-blocking-written net gets
            # one local seeded with the pre-edge value.  Writes update
            # the local in program order (RHS evaluated at write time,
            # like the buffered scheme); sibling reads keep going to V,
            # which still holds the pre-edge value until the final
            # unconditional stores.
            nb_nets = sorted({name for b in blocks
                              for name in _nonblocking_net_writes(b.stmts)})
            nb_map = {name: f"_s{i}" for i, name in enumerate(nb_nets)}
            for name, local in nb_map.items():
                self.emit(f"{local} = V[{name!r}]")
        for i, block in enumerate(blocks):
            self.emit(f"# seq block {block.name or i}")
            self._gen_seq_block(block, commits, nb_map)
        self.emit("# commit non-blocking updates")
        for line in commits:
            self.emit(line)
        for name, local in nb_map.items():
            self.emit(f"V[{name!r}] = {local}")
        self.indent -= 1
        self.emit("")

    # -- sequential blocks --------------------------------------------------------

    def _gen_seq_block(self, block: ir.SeqBlock, commits: List[str],
                       nb_map: Optional[Dict[str, str]] = None) -> None:
        blocking_nets = _blocking_net_writes(block.stmts)
        if blocking_nets:
            # Locals shadow every blocking-written net so sibling blocks
            # keep reading pre-edge values from V.
            local_map = {name: self.fresh("l") for name in sorted(blocking_nets)}
            for name, local in local_map.items():
                self.emit(f"{local} = V[{name!r}]")
            ctx = _SeqCtx(self, commits, local_map, nb_map or {})
            ctx.gen_stmts(block.stmts)
            for name, local in local_map.items():
                net = self.design.nets[name]
                commits.append(f"V[{name!r}] = {local} & {net.mask}")
        else:
            ctx = _SeqCtx(self, commits, {}, nb_map or {})
            ctx.gen_stmts(block.stmts)

    # -- direct (combinational / initial) statements ------------------------------------

    def _gen_stmts_direct(self, stmts: List[ir.Stmt]) -> None:
        ctx = _CombCtx(self)
        ctx.gen_stmts(stmts)

    # -- expressions ---------------------------------------------------------------

    def gen_expr(self, expr: ir.Expr, rd) -> str:
        kind = type(expr)
        mask = (1 << expr.width) - 1
        if kind is ir.Const:
            return str(expr.value)
        if kind is ir.Ref:
            return rd(expr.net.name)
        if kind is ir.Binary:
            return self._gen_binary(expr, rd, mask)
        if kind is ir.Unary:
            return self._gen_unary(expr, rd, mask)
        if kind is ir.Ternary:
            cond = self.gen_expr(expr.cond, rd)
            then = self.gen_expr(expr.then, rd)
            other = self.gen_expr(expr.other, rd)
            return f"({then} if {cond} else {other})"
        if kind is ir.Slice:
            value = self.gen_expr(expr.value, rd)
            if expr.lo == 0:
                return f"({value} & {mask})"
            return f"(({value} >> {expr.lo}) & {mask})"
        if kind is ir.Concat:
            pieces = []
            offset = 0
            for part in reversed(expr.parts):
                text = self.gen_expr(part, rd)
                pieces.append(f"({text} << {offset})" if offset else text)
                offset += part.width
            return "(" + " | ".join(pieces) + ")"
        if kind is ir.MemRead:
            index = self.gen_expr(expr.index, rd)
            mem = expr.memory
            return (f"(M[{mem.name!r}][{index}] "
                    f"if {index} < {mem.depth} else 0)")
        if kind is ir.DynBit:
            value = self.gen_expr(expr.value, rd)
            index = self.gen_expr(expr.index, rd)
            return (f"((({value}) >> ({index})) & 1 "
                    f"if ({index}) < {expr.value.width} else 0)")
        raise SimulationError(f"codegen: unknown expression {expr!r}")

    def _gen_binary(self, expr: ir.Binary, rd, mask: int) -> str:
        a = self.gen_expr(expr.left, rd)
        op = expr.op
        if op == "&&":
            b = self.gen_expr(expr.right, rd)
            return f"(1 if ({a}) and ({b}) else 0)"
        if op == "||":
            b = self.gen_expr(expr.right, rd)
            return f"(1 if ({a}) or ({b}) else 0)"
        b = self.gen_expr(expr.right, rd)
        if op in ("+", "-", "*"):
            return f"((({a}) {op} ({b})) & {mask})"
        if op == "/":
            return f"(((({a}) // ({b})) & {mask}) if ({b}) else {mask})"
        if op == "%":
            return f"(((({a}) % ({b})) & {mask}) if ({b}) else (({a}) & {mask}))"
        if op in ("&", "|", "^"):
            return f"(({a}) {op} ({b}))"
        if op == "<<":
            if isinstance(expr.right, ir.Const):
                if expr.right.value >= expr.width:
                    return "0"
                return f"((({a}) << {expr.right.value}) & {mask})"
            return f"(((({a}) << ({b})) & {mask}) if ({b}) < 64 else 0)"
        if op in (">>", ">>>"):
            if isinstance(expr.right, ir.Const):
                return f"(({a}) >> {expr.right.value})" if expr.right.value < 64 else "0"
            return f"((({a}) >> ({b})) if ({b}) < 64 else 0)"
        py_ops = {"==": "==", "!=": "!=", "<": "<", "<=": "<=",
                  ">": ">", ">=": ">="}
        if op in py_ops:
            return f"(1 if ({a}) {py_ops[op]} ({b}) else 0)"
        raise SimulationError(f"codegen: unknown binary op {op!r}")

    def _gen_unary(self, expr: ir.Unary, rd, mask: int) -> str:
        value = self.gen_expr(expr.operand, rd)
        op = expr.op
        operand_mask = (1 << expr.operand.width) - 1
        if op == "~":
            return f"(~({value}) & {mask})"
        if op == "-":
            return f"(-({value}) & {mask})"
        if op == "!":
            return f"(1 if ({value}) == 0 else 0)"
        if op == "&":
            return f"(1 if ({value}) == {operand_mask} else 0)"
        if op == "|":
            return f"(1 if ({value}) else 0)"
        if op == "^":
            return f"(({value}).bit_count() & 1)"
        if op == "~&":
            return f"(0 if ({value}) == {operand_mask} else 1)"
        if op == "~|":
            return f"(0 if ({value}) else 1)"
        if op == "~^":
            return f"((({value}).bit_count() + 1) & 1)"
        raise SimulationError(f"codegen: unknown unary op {op!r}")


class _StmtCtx:
    """Shared statement-lowering logic; subclasses define write semantics."""

    def __init__(self, gen: _CodeGen):
        self.gen = gen

    def rd(self, name: str) -> str:
        raise NotImplementedError

    def write(self, target: ir.LValue, value_text: str) -> None:
        raise NotImplementedError

    def gen_stmts(self, stmts: List[ir.Stmt]) -> None:
        if not stmts:
            self.gen.emit("pass")
            return
        for stmt in stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: ir.Stmt) -> None:
        gen = self.gen
        if isinstance(stmt, ir.SAssign):
            self.assign(stmt)
        elif isinstance(stmt, ir.SIf):
            cond = gen.gen_expr(stmt.cond, self.rd)
            gen.emit(f"if {cond}:")
            gen.indent += 1
            self.gen_stmts(stmt.then)
            gen.indent -= 1
            if stmt.other:
                gen.emit("else:")
                gen.indent += 1
                self.gen_stmts(stmt.other)
                gen.indent -= 1
        elif isinstance(stmt, ir.SCase):
            subj_temp = gen.fresh("cs")
            gen.emit(f"{subj_temp} = {gen.gen_expr(stmt.subject, self.rd)}")
            first = True
            for item in stmt.items:
                tests = []
                for value, care in item.labels:
                    full = (1 << stmt.subject.width) - 1
                    if care == full:
                        tests.append(f"{subj_temp} == {value}")
                    else:
                        tests.append(f"({subj_temp} & {care}) == {value}")
                keyword = "if" if first else "elif"
                gen.emit(f"{keyword} {' or '.join(tests)}:")
                gen.indent += 1
                self.gen_stmts(item.body)
                gen.indent -= 1
                first = False
            if stmt.default or not first:
                if first:
                    self.gen_stmts(stmt.default)
                else:
                    gen.emit("else:")
                    gen.indent += 1
                    self.gen_stmts(stmt.default)
                    gen.indent -= 1
            elif first:
                gen.emit("pass")
        else:
            raise SimulationError(f"codegen: unknown statement {stmt!r}")

    def assign(self, stmt: ir.SAssign) -> None:
        if isinstance(stmt.target, ir.LConcat):
            # Evaluate once, scatter to parts.
            temp = self.gen.fresh("cc")
            self.gen.emit(f"{temp} = {self.gen.gen_expr(stmt.value, self.rd)}")
            offset = 0
            for part in reversed(stmt.target.parts):
                part_mask = (1 << part.width) - 1
                piece = f"(({temp} >> {offset}) & {part_mask})" if offset \
                    else f"({temp} & {part_mask})"
                self.write_leaf(part, piece, stmt.blocking, part.width)
                offset += part.width
            return
        value_text = self.gen.gen_expr(stmt.value, self.rd)
        self.write_leaf(stmt.target, value_text, stmt.blocking,
                        stmt.value.width)

    def write_leaf(self, target: ir.LValue, value_text: str,
                   blocking: bool,
                   value_width: Optional[int] = None) -> None:
        raise NotImplementedError


class _CombCtx(_StmtCtx):
    """Combinational / initial context: direct reads and writes on V/M."""

    def rd(self, name: str) -> str:
        return f"V[{name!r}]"

    def write_leaf(self, target: ir.LValue, value_text: str,
                   blocking: bool,
                   value_width: Optional[int] = None) -> None:
        gen = self.gen
        if isinstance(target, ir.LNet):
            net = target.net
            if target.hi is None:
                gen.emit(f"V[{net.name!r}] = ({value_text}) & {net.mask}")
            else:
                width = target.hi - target.lo + 1
                field_mask = ((1 << width) - 1) << target.lo
                gen.emit(
                    f"V[{net.name!r}] = ((V[{net.name!r}] & {~field_mask & net.mask}) "
                    f"| ((({value_text}) << {target.lo}) & {field_mask}))")
        elif isinstance(target, ir.LNetDyn):
            net = target.net
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("i")
            gen.emit(f"{temp} = {idx}")
            gen.emit(f"if {temp} < {net.width}:")
            gen.indent += 1
            gen.emit(
                f"V[{net.name!r}] = ((V[{net.name!r}] & ~(1 << {temp})) "
                f"| ((({value_text}) & 1) << {temp}))")
            gen.indent -= 1
        elif isinstance(target, ir.LMem):
            mem = target.memory
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("i")
            gen.emit(f"{temp} = {idx}")
            gen.emit(f"if {temp} < {mem.depth}:")
            gen.indent += 1
            gen.emit(f"M[{mem.name!r}][{temp}] = ({value_text}) & {mem.mask}")
            gen.indent -= 1
        else:
            raise SimulationError(f"codegen: unknown lvalue {target!r}")


class _FastCombCtx(_CombCtx):
    """Settle-locals context: every comb-written net lives in a local
    loaded once at function entry and stored back once at the end."""

    def __init__(self, gen: _CodeGen, local_map: Dict[str, str]):
        super().__init__(gen)
        self.local_map = local_map

    def rd(self, name: str) -> str:
        local = self.local_map.get(name)
        if local is not None:
            return local
        return f"V[{name!r}]"

    def write_leaf(self, target: ir.LValue, value_text: str,
                   blocking: bool,
                   value_width: Optional[int] = None) -> None:
        gen = self.gen
        if isinstance(target, ir.LNet):
            net = target.net
            local = self.local_map[net.name]
            if target.hi is None:
                # Generated expressions never exceed their node width,
                # so the store mask is redundant when the value is no
                # wider than the net.
                if value_width is not None and value_width <= net.width:
                    gen.emit(f"{local} = {value_text}")
                else:
                    gen.emit(f"{local} = ({value_text}) & {net.mask}")
            else:
                width = target.hi - target.lo + 1
                field_mask = ((1 << width) - 1) << target.lo
                gen.emit(
                    f"{local} = (({local} & {~field_mask & net.mask}) "
                    f"| ((({value_text}) << {target.lo}) & {field_mask}))")
        elif isinstance(target, ir.LNetDyn):
            net = target.net
            local = self.local_map[net.name]
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("i")
            gen.emit(f"{temp} = {idx}")
            gen.emit(f"if {temp} < {net.width}:")
            gen.indent += 1
            gen.emit(f"{local} = (({local} & ~(1 << {temp})) "
                     f"| ((({value_text}) & 1) << {temp}))")
            gen.indent -= 1
        else:
            super().write_leaf(target, value_text, blocking, value_width)


class _SeqCtx(_StmtCtx):
    """Sequential context: buffered non-blocking writes, local blocking."""

    def __init__(self, gen: _CodeGen, commits: List[str],
                 local_map: Dict[str, str],
                 nb_map: Optional[Dict[str, str]] = None):
        super().__init__(gen)
        self.commits = commits
        self.local_map = local_map
        self.nb_map = nb_map or {}

    def rd(self, name: str) -> str:
        local = self.local_map.get(name)
        if local is not None:
            return local
        return f"V[{name!r}]"

    def write_leaf(self, target: ir.LValue, value_text: str,
                   blocking: bool,
                   value_width: Optional[int] = None) -> None:
        gen = self.gen
        if blocking:
            self._write_blocking(target, value_text)
            return
        if isinstance(target, ir.LNet) and target.net.name in self.nb_map:
            net = target.net
            local = self.nb_map[net.name]
            if target.hi is None:
                if value_width is not None and value_width <= net.width:
                    gen.emit(f"{local} = {value_text}")
                else:
                    gen.emit(f"{local} = ({value_text}) & {net.mask}")
            else:
                width = target.hi - target.lo + 1
                field_mask = ((1 << width) - 1) << target.lo
                gen.emit(
                    f"{local} = (({local} & {~field_mask & net.mask}) "
                    f"| ((({value_text}) << {target.lo}) & {field_mask}))")
            return
        if isinstance(target, ir.LNetDyn) and target.net.name in self.nb_map:
            net = target.net
            local = self.nb_map[net.name]
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("i")
            gen.emit(f"{temp} = {idx}")
            gen.emit(f"if {temp} < {net.width}:")
            gen.indent += 1
            gen.emit(f"{local} = (({local} & ~(1 << {temp})) "
                     f"| ((({value_text}) & 1) << {temp}))")
            gen.indent -= 1
            return
        if isinstance(target, ir.LNet):
            net = target.net
            temp = gen.fresh("nb")
            self._emit_sentinel(temp)
            gen.emit(f"{temp} = {value_text}")
            if target.hi is None:
                self.commits.append(
                    f"if {temp} is not None: V[{net.name!r}] = {temp} & {net.mask}")
            else:
                width = target.hi - target.lo + 1
                field_mask = ((1 << width) - 1) << target.lo
                self.commits.append(
                    f"if {temp} is not None: V[{net.name!r}] = "
                    f"((V[{net.name!r}] & {~field_mask & net.mask}) "
                    f"| (({temp} << {target.lo}) & {field_mask}))")
        elif isinstance(target, ir.LNetDyn):
            net = target.net
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("nb")
            self._emit_sentinel(temp)
            gen.emit(f"{temp} = (({idx}), ({value_text}))")
            self.commits.append(
                f"if {temp} is not None and {temp}[0] < {net.width}: "
                f"V[{net.name!r}] = ((V[{net.name!r}] & ~(1 << {temp}[0])) "
                f"| (({temp}[1] & 1) << {temp}[0]))")
        elif isinstance(target, ir.LMem):
            mem = target.memory
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("nb")
            self._emit_sentinel(temp)
            gen.emit(f"{temp} = (({idx}), ({value_text}))")
            self.commits.append(
                f"if {temp} is not None and {temp}[0] < {mem.depth}: "
                f"M[{mem.name!r}][{temp}[0]] = {temp}[1] & {mem.mask}")
        else:
            raise SimulationError(f"codegen: unknown lvalue {target!r}")

    def _emit_sentinel(self, temp: str) -> None:
        """Initialise a non-blocking commit temporary to None at the top
        of the edge function (a conditional write site may not execute)."""
        header = f"def {self.gen._edge_fn_name}("
        for i, line in enumerate(self.gen.lines):
            if line.startswith(header):
                self.gen.lines.insert(i + 1, f"    {temp} = None")
                return
        raise SimulationError("edge function header not found")

    def _write_blocking(self, target: ir.LValue, value_text: str) -> None:
        gen = self.gen
        if isinstance(target, ir.LNet):
            local = self.local_map.get(target.net.name)
            if local is None:
                raise SimulationError(
                    f"blocking write to {target.net.name!r} missing local")
            net = target.net
            if target.hi is None:
                gen.emit(f"{local} = ({value_text}) & {net.mask}")
            else:
                width = target.hi - target.lo + 1
                field_mask = ((1 << width) - 1) << target.lo
                gen.emit(
                    f"{local} = (({local} & {~field_mask & net.mask}) "
                    f"| ((({value_text}) << {target.lo}) & {field_mask}))")
        elif isinstance(target, ir.LNetDyn):
            local = self.local_map.get(target.net.name)
            if local is None:
                raise SimulationError(
                    f"blocking write to {target.net.name!r} missing local")
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("i")
            gen.emit(f"{temp} = {idx}")
            gen.emit(f"if {temp} < {target.net.width}:")
            gen.indent += 1
            gen.emit(f"{local} = (({local} & ~(1 << {temp})) "
                     f"| ((({value_text}) & 1) << {temp}))")
            gen.indent -= 1
        elif isinstance(target, ir.LMem):
            # Blocking memory writes in seq blocks commit immediately
            # (matches the interpreter's documented behaviour).
            mem = target.memory
            idx = gen.gen_expr(target.index, self.rd)
            temp = gen.fresh("i")
            gen.emit(f"{temp} = {idx}")
            gen.emit(f"if {temp} < {mem.depth}:")
            gen.indent += 1
            gen.emit(f"M[{mem.name!r}][{temp}] = ({value_text}) & {mem.mask}")
            gen.indent -= 1
        else:
            raise SimulationError(f"codegen: unknown lvalue {target!r}")


class _RunCombCtx(_FastCombCtx):
    """Settle section of the fused run loop: the local map covers every
    net, so no V access happens inside the loop at all."""


class _RunSeqCtx(_SeqCtx):
    """Edge section of the fused run loop: reads resolve to the hoisted
    net locals, commit sentinels are re-armed every iteration."""

    def rd(self, name: str) -> str:
        local = self.local_map.get(name)
        if local is not None:
            return local
        vmap = self.gen.vmap or {}
        return vmap.get(name) or f"V[{name!r}]"

    def _emit_sentinel(self, temp: str) -> None:
        gen = self.gen
        gen.lines.insert(
            gen.run_sentinel_at,
            "    " * gen.run_sentinel_indent + f"{temp} = None")
        gen.run_sentinel_at += 1


def _blocking_net_writes(stmts: List[ir.Stmt]) -> set:
    """Names of nets written with blocking assignments anywhere in *stmts*."""
    names: set = set()
    for stmt in ir._walk_stmts(stmts):
        if isinstance(stmt, ir.SAssign) and stmt.blocking:
            for leaf in ir._leaf_lvalues(stmt.target):
                if isinstance(leaf, (ir.LNet, ir.LNetDyn)):
                    names.add(leaf.net.name)
    return names


def _nonblocking_net_writes(stmts: List[ir.Stmt]) -> set:
    """Names of nets written non-blocking anywhere in *stmts* (memories
    keep the buffered commit scheme and are not collected here)."""
    names: set = set()
    for stmt in ir._walk_stmts(stmts):
        if isinstance(stmt, ir.SAssign) and not stmt.blocking:
            for leaf in ir._leaf_lvalues(stmt.target):
                if isinstance(leaf, (ir.LNet, ir.LNetDyn)):
                    names.add(leaf.net.name)
    return names
