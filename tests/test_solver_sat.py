"""Unit tests for the CDCL SAT solver."""

import itertools
import random

import pytest

from repro.solver.sat import SAT, UNSAT, SatSolver, lit, _luby


def _make(n_vars: int) -> SatSolver:
    s = SatSolver()
    s.ensure_vars(n_vars)
    return s


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert _make(1).solve() == SAT

    def test_unit_clause(self):
        s = _make(1)
        s.add_clause([lit(1, True)])
        assert s.solve() == SAT
        assert s.model_value(1) is True

    def test_contradictory_units(self):
        s = _make(1)
        s.add_clause([lit(1, True)])
        ok = s.add_clause([lit(1, False)])
        assert not ok or s.solve() == UNSAT

    def test_tautology_ignored(self):
        s = _make(1)
        s.add_clause([lit(1, True), lit(1, False)])
        assert s.solve() == SAT

    def test_simple_implication_chain(self):
        s = _make(4)
        s.add_clause([lit(1, False), lit(2, True)])   # 1 -> 2
        s.add_clause([lit(2, False), lit(3, True)])   # 2 -> 3
        s.add_clause([lit(3, False), lit(4, True)])   # 3 -> 4
        s.add_clause([lit(1, True)])
        assert s.solve() == SAT
        assert all(s.model_value(v) for v in (1, 2, 3, 4))

    def test_xor_chain_unsat(self):
        # x1 xor x2, x2 xor x3, x1 xor x3, with odd parity forced: UNSAT.
        s = _make(3)
        for a, b in ((1, 2), (2, 3), (1, 3)):
            s.add_clause([lit(a, True), lit(b, True)])
            s.add_clause([lit(a, False), lit(b, False)])
        assert s.solve() == UNSAT


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3])
    def test_pigeonhole_unsat(self, holes):
        """holes+1 pigeons into `holes` holes is UNSAT — a classic
        resolution-hard family that exercises clause learning."""
        pigeons = holes + 1
        def v(p, h):
            return p * holes + h + 1
        s = _make(pigeons * holes)
        for p in range(pigeons):
            s.add_clause([lit(v(p, h), True) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    s.add_clause([lit(v(p1, h), False), lit(v(p2, h), False)])
        assert s.solve() == UNSAT

    def test_pigeonhole_equal_sat(self):
        holes = 3
        def v(p, h):
            return p * holes + h + 1
        s = _make(holes * holes)
        for p in range(holes):
            s.add_clause([lit(v(p, h), True) for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes):
                for p2 in range(p1 + 1, holes):
                    s.add_clause([lit(v(p1, h), False), lit(v(p2, h), False)])
        assert s.solve() == SAT


class TestRandomDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_3sat_vs_bruteforce(self, seed):
        rng = random.Random(seed)
        n_vars, n_clauses = 8, rng.randint(20, 40)
        clauses = []
        for _ in range(n_clauses):
            vs = rng.sample(range(1, n_vars + 1), 3)
            clauses.append([(v, rng.random() < 0.5) for v in vs])
        # brute force
        expected = UNSAT
        for bits in itertools.product([False, True], repeat=n_vars):
            assignment = dict(zip(range(1, n_vars + 1), bits))
            if all(any(assignment[v] == pos for v, pos in cl)
                   for cl in clauses):
                expected = SAT
                break
        s = _make(n_vars)
        for cl in clauses:
            s.add_clause([lit(v, pos) for v, pos in cl])
        got = s.solve()
        assert got == expected
        if got == SAT:
            model = {v: s.model_value(v) for v in range(1, n_vars + 1)}
            assert all(any(model[v] == pos for v, pos in cl)
                       for cl in clauses)


class TestAssumptions:
    def test_assumptions_restrict(self):
        s = _make(2)
        s.add_clause([lit(1, True), lit(2, True)])
        assert s.solve([lit(1, False)]) == SAT
        assert s.model_value(2) is True

    def test_assumption_conflict_not_permanent(self):
        s = _make(2)
        s.add_clause([lit(1, True)])
        assert s.solve([lit(1, False)]) == UNSAT
        # The base formula stays satisfiable.
        assert s.solve() == SAT
        assert s.solve([lit(1, True)]) == SAT

    def test_incremental_reuse(self):
        s = _make(3)
        s.add_clause([lit(1, False), lit(2, True)])
        s.add_clause([lit(2, False), lit(3, True)])
        for _ in range(3):
            assert s.solve([lit(1, True)]) == SAT
            assert s.model_value(3) is True
            assert s.solve([lit(1, True), lit(3, False)]) == UNSAT

    def test_many_assumptions(self):
        s = _make(10)
        for v in range(1, 10):
            s.add_clause([lit(v, False), lit(v + 1, True)])
        assert s.solve([lit(1, True), lit(10, False)]) == UNSAT
        assert s.solve([lit(1, True), lit(10, True)]) == SAT


class TestLuby:
    def test_luby_prefix(self):
        got = [_luby(i) for i in range(15)]
        assert got == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
