"""The snapshotting controller (paper §III-C).

    "This controller is in charge of saving/restoring snapshots that are
    identified by a unique identifier. ... The core of the snapshotting
    controller is part of the virtual machine and it communicates with
    target-specific snapshot controllers."

:class:`SnapshotController` is that core: it assigns snapshot ids, calls
into the target-specific mechanisms (CRIU on the simulator target, the
scan-chain IP on the FPGA target), keeps accounting, and implements
Algorithm 1's ``UpdateState``/``RestoreState`` pair.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SnapshotError
from repro.targets.base import HardwareTarget, HwSnapshot
from repro.vm.state import ExecState


@dataclass
class SnapshotStats:
    saves: int = 0
    restores: int = 0
    resets: int = 0
    bits_saved: int = 0
    bits_restored: int = 0
    modelled_save_s: float = 0.0
    modelled_restore_s: float = 0.0


class SnapshotController:
    """VM-side snapshot management over one hardware target."""

    def __init__(self, target: HardwareTarget):
        self.target = target
        self._ids = itertools.count(1)
        self.stats = SnapshotStats()

    # -- primitive operations ---------------------------------------------------

    def save(self) -> HwSnapshot:
        """Suspend the target, capture its state, resume; assign an id."""
        snapshot = self.target.save_snapshot()
        snapshot.snapshot_id = snapshot.snapshot_id or next(self._ids)
        self.stats.saves += 1
        self.stats.bits_saved += snapshot.bits
        self.stats.modelled_save_s += snapshot.modelled_cost_s
        return snapshot

    def restore(self, snapshot: HwSnapshot) -> None:
        before = self.target.timer.total_s
        self.target.restore_snapshot(snapshot)
        self.stats.restores += 1
        self.stats.bits_restored += snapshot.bits
        self.stats.modelled_restore_s += self.target.timer.total_s - before

    def reset(self) -> None:
        """Full power-on reset (the 'reboot' the baselines pay for)."""
        self.target.reset()
        self.stats.resets += 1

    # -- Algorithm 1 lines 6-7 -------------------------------------------------------

    def update_state(self, state: ExecState) -> None:
        """``UpdateState(S_prev)``: re-snapshot the live hardware into the
        outgoing state (its old snapshot is superseded)."""
        state.hw_snapshot = self.save()

    def restore_state(self, state: ExecState) -> None:
        """``RestoreState(S)``: make the live hardware match the incoming
        state. A state that never owned hardware gets a fresh reset."""
        if state.hw_snapshot is None:
            self.reset()
            state.hw_snapshot = self.save()
        else:
            self.restore(state.hw_snapshot)
