"""Differential equivalence gate for the netlist optimizer.

The optimizer (``repro.opt``) is only allowed into the compiled backend
because this suite proves it semantics-preserving: for every generated
design in the RTL fuzz corpus and every catalog peripheral — plain and
scan-instrumented — an *optimized* :class:`CompiledSimulation` must
agree with the *unoptimized* :class:`Interpreter` on

* every declared output, on every cycle, under randomized stimulus;
* the full architectural state (``save_state`` — state nets, state
  memories, input pins — i.e. HardSnap's S_hw), byte for byte;
* the multi-cycle fast path (``step(n)``), which uses a different
  generated code path than single ``step()`` calls.

CI fails if this gate is skipped (the opt benchmark records that it
ran in ``BENCH_opt.json``).
"""

import random

import pytest

from repro.hdl import elaborate
from repro.instrument import insert_scan_chain
from repro.peripherals import catalog
from repro.sim.compiler import CompiledSimulation
from repro.sim.interpreter import Interpreter
from tests.rtl_fuzz import DesignGen

FUZZ_SEEDS = list(range(14))
VARIANTS = ["plain", "scan"]


def _stimulate(ref, opt, rng, cycles):
    """Drive both simulations with identical random stimulus, checking
    every output every cycle; then compare full snapshots."""
    for cyc in range(cycles):
        stim = {n.name: rng.getrandbits(n.width)
                for n in ref.design.inputs if n.name != "clk"}
        ref.poke_many(stim)
        opt.poke_many(dict(stim))
        ref.step()
        opt.step()
        for out in ref.design.outputs:
            assert ref.peek(out.name) == opt.peek(out.name), (
                f"cycle {cyc}: output {out.name!r} diverged: "
                f"interpreter={ref.peek(out.name):#x} "
                f"optimized={opt.peek(out.name):#x}")
    assert ref.save_state() == opt.save_state(), \
        "architectural state diverged after randomized stimulus"


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_fuzz_design_equivalence(seed, variant):
    source, _inputs, _outputs = DesignGen(seed).generate()

    def build():
        design = elaborate(source, "fuzzed")
        if variant == "scan":
            design = insert_scan_chain(design).design
        return design

    ref = Interpreter(build())
    opt = CompiledSimulation(build(), opt=True)
    _stimulate(ref, opt, random.Random(seed + 1000), cycles=60)
    # The bulk path (fused multi-cycle run loop) is generated code the
    # per-cycle loop above never exercises.
    ref.step(50)
    opt.step(50)
    assert ref.save_state() == opt.save_state(), \
        "architectural state diverged on the bulk step(50) path"


@pytest.mark.parametrize("spec", catalog.EXTENDED_CORPUS,
                         ids=lambda s: s.name)
def test_catalog_equivalence(spec):
    design = spec.elaborate()
    ref = Interpreter(design)
    opt = CompiledSimulation(spec.elaborate(), opt=True)
    _stimulate(ref, opt, random.Random(7), cycles=120)


@pytest.mark.parametrize("spec", catalog.EXTENDED_CORPUS,
                         ids=lambda s: s.name)
def test_catalog_scan_instrumented_equivalence(spec):
    """Scan-chain–instrumented peripherals on the bulk path: this is
    exactly the configuration FpgaTarget hosts, so byte-identical
    snapshots here mean snapshot transport between optimized and
    unoptimized sessions is safe."""
    ref = Interpreter(insert_scan_chain(spec.elaborate()).design)
    opt = CompiledSimulation(insert_scan_chain(spec.elaborate()).design,
                             opt=True)
    ref.step(200)
    opt.step(200)
    assert ref.save_state() == opt.save_state()


def test_optimizer_actually_ran():
    """Guard against the gate silently testing opt=False builds."""
    spec = catalog.EXTENDED_CORPUS[0]
    sim = CompiledSimulation(spec.elaborate(), opt=True)
    assert sim.opt_report is not None
