"""E9 — parallel scaling: sharded workers vs the serial runtime.

HardSnap's snapshots make states portable, so N target instances can
explore concurrently (§VI discusses scaling co-testing beyond one
target). This experiment measures the worker-pool runtime two ways:

* **fuzzing throughput** — the input-sharded :class:`ParallelFuzzer`
  against the packet-parser firmware at 1/2/4 workers vs the serial
  fuzzer, *with identical results asserted*: same crashes, same edge
  set, byte-identical verdict string at every worker count,
* **DSE verdict identity** — the leased :class:`ParallelAnalysisEngine`
  reproduces the serial engine's verdicts on a forking workload.

Speedup is only asserted for worker counts the host can actually run
concurrently (``effective cores >= workers``); other counts still
verify every identity property, and the skipped gate is recorded in
the artifact — never silently dropped. CI runs this on 2 cores and
requires >= 1.5x at the eligible counts.

Emits ``benchmarks/out/BENCH_parallel.json`` with the scaling table.
"""

import json
import os
import time

from benchmarks.conftest import OUT_DIR, emit
from repro.analysis import format_table
from repro.core import HardSnapSession, SnapshotFuzzer
from repro.firmware import TIMER_BASE, dispatcher, fuzz_packet_parser
from repro.isa import assemble
from repro.parallel import ParallelAnalysisEngine, ParallelFuzzer
from repro.peripherals import catalog
from repro.targets import FpgaTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]
# The cmd-2 seed programs a long timer wait: each execution steps the
# RTL simulation for dozens of cycles, so per-input hardware work (the
# thing workers parallelise) dominates the result-merge traffic.
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 31])]
EXECUTIONS = 600
BATCH = 64
WORKER_COUNTS = [1, 2, 4]
MIN_SPEEDUP = 1.5  # asserted per worker count when cores >= workers


def _effective_cores() -> int:
    """Cores this process may actually run on (affinity/cgroup aware) —
    the number that decides whether a speedup gate is meaningful."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _serial_fuzz():
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, seed=3)
    start = time.perf_counter()
    report = fuzzer.run(executions=EXECUTIONS, batch_size=BATCH)
    return report, time.perf_counter() - start


def _parallel_fuzz(workers):
    with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                        workers=workers, batch_size=BATCH,
                        seed=3) as fuzzer:
        fuzzer.warm()  # target elaboration out of the timed region
        start = time.perf_counter()
        report = fuzzer.run(executions=EXECUTIONS)
        elapsed = time.perf_counter() - start
        stats = fuzzer.pool_stats
    return report, elapsed, stats


def test_parallel_scaling(benchmark):
    serial, serial_s = benchmark.pedantic(_serial_fuzz, rounds=1,
                                          iterations=1)

    rows = [["serial", 1, f"{serial_s:.3f}", "1.00x",
             len(serial.crashes), serial.edges_covered, "reference"]]
    results = {}
    for workers in WORKER_COUNTS:
        report, elapsed, stats = _parallel_fuzz(workers)
        identical = report.verdict_summary() == serial.verdict_summary()
        results[workers] = (report, elapsed, identical)
        rows.append(["parallel", workers, f"{elapsed:.3f}",
                     f"{serial_s / elapsed:.2f}x",
                     len(report.crashes), report.edges_covered,
                     "identical" if identical else "DIVERGED"])

    cores = os.cpu_count() or 1
    effective_cores = _effective_cores()
    table = format_table(
        ["runtime", "workers", "host s", "speedup", "crashes", "edges",
         "verdict vs serial"],
        rows,
        title=f"E9: input-sharded fuzzing, {EXECUTIONS} executions "
              f"(batch {BATCH}, {cores} host cores, "
              f"{effective_cores} effective)")
    emit("parallel_scaling", table)

    # DSE verdict identity (leased engine vs serial Algorithm 1).
    dse_serial = HardSnapSession(
        dispatcher(6, work_cycles=8), TIMER,
        scan_mode="functional").run(max_instructions=200_000)
    with ParallelAnalysisEngine(dispatcher(6, work_cycles=8), TIMER,
                                workers=2,
                                scan_mode="functional") as engine:
        dse_parallel = engine.run(max_instructions=200_000)
    dse_identical = (dse_parallel.verdict_summary()
                     == dse_serial.verdict_summary())

    # Speedup gate eligibility per worker count: judging scaling on a
    # runner without the cores to scale onto is meaningless, but the
    # skipped gate must be visible in the artifact (no-silent-caps).
    eligible = [w for w in WORKER_COUNTS
                if w >= 2 and effective_cores >= w]
    gate = {"min_speedup": MIN_SPEEDUP, "eligible_workers": eligible,
            "enforced": bool(eligible)}
    if not eligible:
        gate["note"] = (
            f"speedup gate SKIPPED: {effective_cores} effective core(s) "
            f"cannot host >= 2 concurrent workers; identity properties "
            f"still asserted")
        print(gate["note"])

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_parallel.json").write_text(json.dumps({
        "experiment": "parallel_scaling",
        "host_cores": cores,
        "effective_cores": effective_cores,
        "executions": EXECUTIONS,
        "batch_size": BATCH,
        "serial_host_s": serial_s,
        "workers": {
            str(w): {
                "host_s": elapsed,
                "speedup": serial_s / elapsed,
                "crashes": len(report.crashes),
                "edges": report.edges_covered,
                "verdict_identical": identical,
                "speedup_gate_eligible": w in eligible,
            } for w, (report, elapsed, identical) in results.items()
        },
        "speedup_gate": gate,
        "dse_verdict_identical": dse_identical,
    }, indent=1) + "\n")

    # Identity holds unconditionally, at every worker count.
    for workers, (report, _, identical) in results.items():
        assert identical, f"workers={workers} diverged from serial"
        assert [c.input_bytes for c in report.crashes] == \
            [c.input_bytes for c in serial.crashes]
        assert report.edge_set == serial.edge_set
    assert dse_identical
    assert serial.crashes and serial.crashes[0].input_bytes[1] >= 0x80

    # Scaling gate: only where the host can truly run the workers.
    if eligible:
        best = min(elapsed for w, (_, elapsed, _) in results.items()
                   if w in eligible)
        assert serial_s / best >= MIN_SPEEDUP, (
            f"best eligible parallel speedup {serial_s / best:.2f}x "
            f"< {MIN_SPEEDUP}x ({effective_cores} effective cores)")
