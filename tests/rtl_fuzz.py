"""Random RTL design generator for differential pipeline fuzzing.

Generates random — but well-formed — Verilog modules: layered
combinational logic (loop-free by construction), sequential registers
with reset, occasional memories, case statements and part selects.
Used by ``tests/test_rtl_fuzz.py`` to assert that

* the interpreter and the compiled backend agree bit-for-bit,
* the emit -> reparse -> elaborate round trip preserves behaviour,
* scan-chain instrumentation leaves functional behaviour intact.
"""

from __future__ import annotations

import random
from typing import List, Tuple

_BINOPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">=",
           "&&", "||"]
_UNOPS = ["~", "-", "!", "&", "|", "^"]


class DesignGen:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.signals: List[Tuple[str, int]] = []  # (name, width) readable

    def _width(self) -> int:
        return self.rng.choice([1, 2, 4, 7, 8, 13, 16])

    def _expr(self, depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.3:
            if rng.random() < 0.4 or not self.signals:
                width = self._width()
                return f"{width}'d{rng.randrange(1 << min(width, 16))}"
            name, width = rng.choice(self.signals)
            if width > 1 and rng.random() < 0.3:
                hi = rng.randrange(width)
                lo = rng.randrange(hi + 1)
                return f"{name}[{hi}:{lo}]" if hi != lo else f"{name}[{hi}]"
            return name
        choice = rng.random()
        if choice < 0.45:
            op = rng.choice(_BINOPS)
            right = self._expr(depth - 1)
            if op in ("<<", ">>"):
                right = f"3'd{rng.randrange(8)}"  # bounded shift amounts
            return f"({self._expr(depth - 1)} {op} {right})"
        if choice < 0.65:
            return f"({rng.choice(_UNOPS)}{self._expr(depth - 1)})"
        if choice < 0.8:
            return (f"({self._expr(depth - 1)} ? {self._expr(depth - 1)} "
                    f": {self._expr(depth - 1)})")
        parts = ", ".join(self._expr(depth - 1)
                          for _ in range(rng.randint(2, 3)))
        return f"{{{parts}}}"

    def generate(self) -> Tuple[str, List[Tuple[str, int]], List[str]]:
        """Returns (verilog, input list, output names)."""
        rng = self.rng
        inputs: List[Tuple[str, int]] = [("clk", 1), ("rst", 1)]
        for i in range(rng.randint(1, 4)):
            inputs.append((f"in{i}", self._width()))
        self.signals = [s for s in inputs if s[0] not in ("clk", "rst")]

        lines: List[str] = []
        # Registers with reset.
        regs: List[Tuple[str, int]] = []
        for i in range(rng.randint(1, 4)):
            name, width = f"r{i}", self._width()
            regs.append((name, width))
            lines.append(f"    reg [{width - 1}:0] {name};")
        # Optional memory.
        has_mem = rng.random() < 0.5
        if has_mem:
            lines.append("    reg [7:0] mem [0:7];")

        # Layered combinational wires (no loops by construction).
        wires: List[Tuple[str, int]] = []
        body_comb: List[str] = []
        self.signals.extend(regs)
        for i in range(rng.randint(1, 5)):
            name, width = f"w{i}", self._width()
            body_comb.append(
                f"    assign {name} = {self._expr(rng.randint(1, 3))};")
            lines.append(f"    wire [{width - 1}:0] {name};")
            wires.append((name, width))
            self.signals.append((name, width))

        # Sequential block.
        seq: List[str] = ["    always @(posedge clk) begin",
                          "        if (rst) begin"]
        for name, width in regs:
            seq.append(f"            {name} <= "
                       f"{width}'d{rng.randrange(1 << min(width, 16))};")
        seq.append("        end else begin")
        for name, width in regs:
            if rng.random() < 0.3:
                # case on some signal
                subject, s_width = rng.choice(self.signals)
                seq.append(f"            case ({subject})")
                for label in rng.sample(range(1 << min(s_width, 3)),
                                        k=min(2, 1 << min(s_width, 3))):
                    seq.append(f"                {s_width}'d{label}: "
                               f"{name} <= {self._expr(2)};")
                seq.append(f"                default: {name} <= "
                           f"{self._expr(1)};")
                seq.append("            endcase")
            else:
                seq.append(f"            {name} <= {self._expr(2)};")
        if has_mem:
            idx_sig = rng.choice(self.signals)[0]
            seq.append(f"            mem[{idx_sig}] <= {self._expr(1)};")
        seq.append("        end")
        seq.append("    end")

        # Outputs: one per register/wire plus a memory read.
        outputs: List[str] = []
        out_lines: List[str] = []
        for i, (name, width) in enumerate(regs + wires):
            out = f"o{i}"
            outputs.append(out)
            out_lines.append(f"    output wire [{width - 1}:0] {out},")
            body_comb.append(f"    assign {out} = {name};")
        if has_mem:
            out = "omem"
            outputs.append(out)
            out_lines.append("    output wire [7:0] omem,")
            idx_sig = rng.choice(self.signals)[0]
            body_comb.append(f"    assign {out} = mem[{idx_sig}];")

        port_decls = [f"    input wire [{w - 1}:0] {n}," for n, w in inputs]
        ports_text = "\n".join(port_decls + out_lines).rstrip(",")
        source = (f"module fuzzed (\n{ports_text}\n);\n"
                  + "\n".join(lines) + "\n"
                  + "\n".join(body_comb) + "\n"
                  + "\n".join(seq) + "\nendmodule\n")
        return source, [s for s in inputs if s[0] not in ("clk",)], outputs
