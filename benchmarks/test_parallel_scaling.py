"""E9 — parallel scaling: sharded workers vs the serial runtime.

HardSnap's snapshots make states portable, so N target instances can
explore concurrently (§VI discusses scaling co-testing beyond one
target). This experiment measures the worker-pool runtime two ways:

* **fuzzing throughput** — the input-sharded :class:`ParallelFuzzer`
  against the packet-parser firmware at 1/2/4 workers vs the serial
  fuzzer, under **both transports** (shared-memory slabs and the plain
  queue fallback), *with identical results asserted*: same crashes,
  same edge set, byte-identical verdict string for every cell,
* **DSE verdict identity** — the leased :class:`ParallelAnalysisEngine`
  reproduces the serial engine's verdicts on a forking workload.

Each cell also records the transport's byte and time accounting
(queue bytes, shm bytes, encode/decode seconds on both sides) so the
artifact shows *where* IPC cost went, not just the total wall time.

Speedup is only asserted for worker counts the host can actually run
concurrently (``effective cores >= workers``); other counts still
verify every identity property, and the skipped gate is recorded in
the artifact — never silently dropped. The gate: the default transport
must beat serial (> 1.0x) at 2 workers.

Emits ``benchmarks/out/BENCH_parallel.json`` with the scaling table.
"""

import json
import os
import time

from benchmarks.conftest import OUT_DIR, emit
from repro.analysis import format_table
from repro.core import HardSnapSession, SnapshotFuzzer
from repro.firmware import TIMER_BASE, dispatcher, fuzz_packet_parser
from repro.isa import assemble
from repro.parallel import ParallelAnalysisEngine, ParallelFuzzer
from repro.parallel.shm import shm_available
from repro.peripherals import catalog
from repro.targets import FpgaTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]
# The cmd-2 seed programs a long timer wait: each execution steps the
# RTL simulation for dozens of cycles, so per-input hardware work (the
# thing workers parallelise) dominates the result-merge traffic.
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 31])]
EXECUTIONS = 600
BATCH = 64
WORKER_COUNTS = [1, 2, 4]
#: The parallel runtime must beat serial at 2 workers (the ISSUE-8
#: headline) on the default transport, when the host has the cores.
MIN_SPEEDUP = 1.0
GATE_WORKERS = 2


def _effective_cores() -> int:
    """Cores this process may actually run on (affinity/cgroup aware) —
    the number that decides whether a speedup gate is meaningful."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _transports():
    kinds = ["queue"]
    if shm_available():
        kinds.insert(0, "shm")  # default first
    return kinds


def _serial_fuzz():
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, seed=3)
    start = time.perf_counter()
    report = fuzzer.run(executions=EXECUTIONS, batch_size=BATCH)
    return report, time.perf_counter() - start


def _parallel_fuzz(workers, transport):
    with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                        workers=workers, batch_size=BATCH,
                        seed=3, transport=transport) as fuzzer:
        fuzzer.warm()  # target elaboration out of the timed region
        start = time.perf_counter()
        report = fuzzer.run(executions=EXECUTIONS)
        elapsed = time.perf_counter() - start
        stats = fuzzer.pool_stats
    return report, elapsed, stats


def test_parallel_scaling(benchmark):
    serial, serial_s = benchmark.pedantic(_serial_fuzz, rounds=1,
                                          iterations=1)

    transports = _transports()
    default_transport = transports[0]
    rows = [["serial", "-", 1, f"{serial_s:.3f}", "1.00x",
             len(serial.crashes), serial.edges_covered, "-", "-",
             "reference"]]
    cells = {}
    for transport in transports:
        for workers in WORKER_COUNTS:
            report, elapsed, stats = _parallel_fuzz(workers, transport)
            identical = (report.verdict_summary()
                         == serial.verdict_summary())
            ipc = stats.ipc
            cells[(transport, workers)] = (report, elapsed, identical,
                                           ipc.as_dict())
            rows.append([
                "parallel", stats.transport, workers, f"{elapsed:.3f}",
                f"{serial_s / elapsed:.2f}x",
                len(report.crashes), report.edges_covered,
                f"{ipc.queue_bytes_out + ipc.queue_bytes_in}",
                f"{ipc.shm_bytes_out + ipc.shm_bytes_in}",
                "identical" if identical else "DIVERGED"])

    cores = os.cpu_count() or 1
    effective_cores = _effective_cores()
    table = format_table(
        ["runtime", "transport", "workers", "host s", "speedup",
         "crashes", "edges", "queue B", "shm B", "verdict vs serial"],
        rows,
        title=f"E9: input-sharded fuzzing, {EXECUTIONS} executions "
              f"(batch {BATCH}, {cores} host cores, "
              f"{effective_cores} effective)")
    emit("parallel_scaling", table)

    # DSE verdict identity (leased engine vs serial Algorithm 1),
    # checked under every transport.
    dse_serial = HardSnapSession(
        dispatcher(6, work_cycles=8), TIMER,
        scan_mode="functional").run(max_instructions=200_000)
    dse_identical = {}
    for transport in transports:
        with ParallelAnalysisEngine(dispatcher(6, work_cycles=8), TIMER,
                                    workers=2, transport=transport,
                                    scan_mode="functional") as engine:
            dse_parallel = engine.run(max_instructions=200_000)
        dse_identical[transport] = (dse_parallel.verdict_summary()
                                    == dse_serial.verdict_summary())

    # Speedup gate eligibility: judging scaling on a runner without the
    # cores to scale onto is meaningless, but the skipped gate must be
    # visible in the artifact (no-silent-caps).
    gate_eligible = effective_cores >= GATE_WORKERS
    gate = {"min_speedup": MIN_SPEEDUP, "workers": GATE_WORKERS,
            "transport": default_transport, "enforced": gate_eligible}
    if not gate_eligible:
        gate["note"] = (
            f"speedup gate SKIPPED: {effective_cores} effective core(s) "
            f"cannot host {GATE_WORKERS} concurrent workers; identity "
            f"properties still asserted")
        print(gate["note"])

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "BENCH_parallel.json").write_text(json.dumps({
        "experiment": "parallel_scaling",
        "host_cores": cores,
        "effective_cores": effective_cores,
        "executions": EXECUTIONS,
        "batch_size": BATCH,
        "serial_host_s": serial_s,
        "default_transport": default_transport,
        "transports": {
            transport: {
                str(w): {
                    "host_s": elapsed,
                    "speedup": serial_s / elapsed,
                    "crashes": len(report.crashes),
                    "edges": report.edges_covered,
                    "verdict_identical": identical,
                    "ipc": ipc,
                } for (t, w), (report, elapsed, identical, ipc)
                in cells.items() if t == transport
            } for transport in transports
        },
        "speedup_gate": gate,
        "dse_verdict_identical": dse_identical,
    }, indent=1) + "\n")

    # Identity holds unconditionally, per transport and worker count.
    for (transport, workers), (report, _, identical, _ipc) in \
            cells.items():
        assert identical, (f"transport={transport} workers={workers} "
                           f"diverged from serial")
        assert [c.input_bytes for c in report.crashes] == \
            [c.input_bytes for c in serial.crashes]
        assert report.edge_set == serial.edge_set
    assert all(dse_identical.values())
    assert serial.crashes and serial.crashes[0].input_bytes[1] >= 0x80

    # Scaling gate: the default transport must beat serial at 2 workers
    # where the host can truly run them.
    if gate_eligible:
        _, elapsed, _, _ = cells[(default_transport, GATE_WORKERS)]
        assert serial_s / elapsed >= MIN_SPEEDUP, (
            f"{default_transport} speedup {serial_s / elapsed:.2f}x at "
            f"{GATE_WORKERS} workers < {MIN_SPEEDUP}x "
            f"({effective_cores} effective cores)")
