"""The selective symbolic executor for HS32 firmware.

Executes firmware symbolically (KLEE-style: fork on feasible symbolic
branches, path conditions checked by the bitvector solver) while
*concretely* forwarding every access that crosses the VM boundary into
the hardware domain — HardSnap's selective symbolic execution (§III-B).

Forking discipline at the hardware boundary: when a state must fork
because a symbolic address/value reaches MMIO under the completeness
policy, the siblings are forked *before* the access executes — they
re-execute the access against their own hardware snapshot when
scheduled. Only the currently scheduled state ever touches live
hardware, which is what keeps Algorithm 1's per-state hardware ownership
sound.

Dispatch tiers (``dispatch=`` constructor argument):

* ``"fast"`` (default) — the firmware image is predecoded once into a
  pc-keyed instruction table shared by every state, instructions
  dispatch through a per-opcode handler table built at construction,
  and fully-concrete ALU/branch operations run through plain-int
  semantics tables without touching BitVec boxing or the solver.
  :meth:`step_block` exposes the batched entry: up to *n* instructions
  on one state per call with per-instruction engine hooks.
* ``"legacy"`` — the original fetch → decode → if/elif chain, kept as
  the differential oracle (``tests/test_vm_dispatch_differential.py``).

Both tiers share every helper that carries semantics (branch forking,
memory, intrinsics, bug reporting), so they can only diverge in fetch
and dispatch — exactly what the differential suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.errors import VmError
from repro.isa import encoding as enc
from repro.isa.assembler import Program
from repro.isa.cpu import (ALU_I_OPS, ALU_R_OPS, BRANCH_OPS, _alu_i, _alu_r,
                           _branch_taken)
from repro.isa.predecode import DecodedImage, decoded_image
from repro.solver import Solver
from repro.solver import expr as E
from repro.vm import detectors as D
from repro.vm.forwarding import MmioBridge
from repro.vm.memory import SymbolicMemory, Value
from repro.vm.state import (STATUS_ACTIVE, STATUS_ERROR, STATUS_HALTED,
                            STATUS_TERMINATED, ExecState)

MASK32 = 0xFFFFFFFF

DISPATCH_MODES = ("fast", "legacy")


@dataclass
class StepOutcome:
    """Result of executing one instruction (or one batched block) on one
    state."""

    forks: List[ExecState] = field(default_factory=list)
    bug: Optional[D.Bug] = None
    #: Engine-visible instruction slots consumed (fetch faults included,
    #: matching the per-step engine loop's accounting). Always 1 for
    #: :meth:`SymbolicExecutor.step`; up to *n* for ``step_block``.
    executed: int = 1


class SymbolicExecutor:
    """Instruction-level symbolic execution engine."""

    def __init__(self, program: Program, bridge: Optional[MmioBridge],
                 solver: Optional[Solver] = None,
                 ram_size: int = 64 * 1024,
                 mmio_base: int = 0x4000_0000,
                 max_forks_per_branch: int = 2,
                 dispatch: str = "fast"):
        if dispatch not in DISPATCH_MODES:
            raise VmError(f"unknown dispatch mode {dispatch!r}; "
                          f"have {DISPATCH_MODES}")
        self.program = program
        self.bridge = bridge
        self.solver = solver or (bridge.solver if bridge else Solver())
        self.ram_size = ram_size
        self.mmio_base = mmio_base
        self.bugs: List[D.Bug] = []
        self.coverage: Set[int] = set()
        self._sym_counter = 0
        self.instructions_executed = 0
        self.sat_forks = 0
        self.dispatch = dispatch
        #: The program predecoded once: pc -> Instruction for every
        #: valid word of the (static) image, shared across all states.
        self._image: DecodedImage = decoded_image(program)
        self._itab = self._image.itab
        self._handlers = self._build_handlers()

    def _build_handlers(self) -> Dict[int, Callable[..., None]]:
        """Per-opcode handler table (built once at construction)."""
        handlers: Dict[int, Callable[..., None]] = {}
        for op in enc.R_TYPE:
            handlers[op] = self._op_alu_r
        for op in enc.I_ALU:
            handlers[op] = self._op_alu_i
        for op in enc.LOADS:
            handlers[op] = self._op_load
        for op in enc.STORES:
            handlers[op] = self._op_store
        for op in enc.BRANCHES:
            handlers[op] = self._op_branch
        handlers[enc.JAL] = self._op_jal
        handlers[enc.JALR] = self._op_jalr
        handlers[enc.HALT] = self._op_halt
        handlers[enc.IRET] = self._op_iret
        handlers[enc.HS] = self._op_hs
        return handlers

    # -- state construction ---------------------------------------------------

    def make_initial_state(self) -> ExecState:
        memory = SymbolicMemory(self.ram_size)
        memory.load_image(self._image.image)
        state = ExecState(memory=memory, pc=self.program.entry)
        state.set_reg(enc.REG_SP, self.ram_size - 16)
        return state

    # -- interrupts (called by the engine loop) -----------------------------------

    def maybe_interrupt(self, state: ExecState, pending: bool) -> bool:
        """Vector into the handler if an IRQ is pending and deliverable.

        Interrupt service is atomic at the engine level (Inception's
        timing-violation avoidance): the engine keeps scheduling this
        state until ``in_irq`` drops.
        """
        if not (pending and state.irq_enabled and not state.in_irq
                and state.irq_handler is not None):
            return False
        state.irq_return_pc = state.pc
        state.in_irq = True
        state.pc = state.irq_handler
        return True

    # -- stepping -------------------------------------------------------------------

    def step(self, state: ExecState) -> StepOutcome:
        """Execute one instruction; may fork, halt, or record a bug."""
        if self.dispatch == "legacy":
            return self._legacy_step(state)
        return self.step_block(state, 1)

    def _legacy_step(self, state: ExecState) -> StepOutcome:
        """The original per-instruction stepper: byte fetch, fresh
        decode, if/elif dispatch. Differential oracle for the fast tier."""
        outcome = StepOutcome()
        word = self._fetch(state, outcome)
        if word is None:
            return outcome
        instr = enc.decode(word)
        if not enc.is_valid_opcode(instr.opcode):
            self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                      f"opcode 0x{instr.opcode:02x}")
            return outcome
        self.coverage.add(state.pc)
        state.recent_pcs.append(state.pc)
        state.steps += 1
        self.instructions_executed += 1
        self._execute(state, instr, outcome)
        return outcome

    def step_block(self, state: ExecState, max_steps: int,
                   pre_step: Optional[Callable[[ExecState], None]] = None,
                   post_step: Optional[Callable[[], None]] = None,
                   finish_irq: bool = False) -> StepOutcome:
        """Execute up to *max_steps* instructions on one state in a
        tight loop — the batched lane entry.

        The loop shares the predecode and handler tables across every
        iteration and hoists the hot lookups into locals, so dispatch
        overhead is paid once per block instead of once per instruction.
        It stops early on a fork, a bug, or any status change, so the
        caller observes exactly the same event boundaries as *max_steps*
        calls to :meth:`step`.

        ``pre_step``/``post_step`` are the engine's per-instruction
        hooks (interrupt polling before, hardware clocking after); both
        also run for fetch-fault slots, matching the per-step engine
        loop. With ``finish_irq`` the block keeps executing past
        *max_steps* while the state is inside an interrupt handler
        (searcher-level interrupt atomicity for multi-lane scheduling).
        """
        if self.dispatch == "legacy":
            return self._legacy_block(state, max_steps, pre_step, post_step,
                                      finish_irq)
        outcome = StepOutcome()
        itab = self._itab
        handlers = self._handlers
        coverage_add = self.coverage.add
        recent = state.recent_pcs.append
        mem = state.memory
        predecodable = mem.image_digest == self._image.digest
        executed = 0
        decoded = 0
        while True:
            if pre_step is not None:
                pre_step(state)
            executed += 1
            instr = itab.get(state.pc) \
                if (predecodable and mem.code_clean) else None
            if instr is None:
                # Slow tier: unmatched image, touched code region, data
                # words, out-of-image pcs — byte-accurate fetch with the
                # same faults the legacy stepper raises.
                word = self._fetch(state, outcome)
                if word is not None:
                    fetched = enc.decode(word)
                    if enc.is_valid_opcode(fetched.opcode):
                        instr = fetched
                    else:
                        self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                                  f"opcode 0x{fetched.opcode:02x}")
            if instr is not None:
                coverage_add(state.pc)
                recent(state.pc)
                state.steps += 1
                decoded += 1
                handlers[instr.opcode](state, instr, outcome)
            if post_step is not None:
                post_step()
            if (outcome.forks or outcome.bug is not None
                    or state.status != STATUS_ACTIVE):
                break
            if executed >= max_steps and not (finish_irq and state.in_irq):
                break
        self.instructions_executed += decoded
        outcome.executed = executed
        return outcome

    def _legacy_block(self, state: ExecState, max_steps: int,
                      pre_step: Optional[Callable[[ExecState], None]],
                      post_step: Optional[Callable[[], None]],
                      finish_irq: bool) -> StepOutcome:
        """Batched entry in legacy mode: the original stepper in the
        same hook/stop-condition envelope, so engine-level runs are
        byte-comparable across dispatch tiers."""
        outcome = StepOutcome()
        executed = 0
        while True:
            if pre_step is not None:
                pre_step(state)
            executed += 1
            step_out = self._legacy_step(state)
            outcome.forks.extend(step_out.forks)
            if step_out.bug is not None:
                outcome.bug = step_out.bug
            if post_step is not None:
                post_step()
            if (outcome.forks or outcome.bug is not None
                    or state.status != STATUS_ACTIVE):
                break
            if executed >= max_steps and not (finish_irq and state.in_irq):
                break
        outcome.executed = executed
        return outcome

    def _fetch(self, state: ExecState, outcome: StepOutcome) -> Optional[int]:
        if state.pc % 4 or state.pc + 4 > self.ram_size or state.pc < 0:
            self._bug(state, outcome, D.KIND_OOB_READ,
                      f"instruction fetch at 0x{state.pc:x}")
            return None
        word = state.memory.read(state.pc, 4)
        if not isinstance(word, int):
            self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                      "symbolic instruction word (self-modifying code?)")
            return None
        return word

    # -- dispatch ----------------------------------------------------------------------

    def _execute(self, state: ExecState, instr: enc.Instruction,
                 outcome: StepOutcome) -> None:
        op = instr.opcode
        next_pc = state.pc + 4
        if op in enc.R_TYPE:
            state.set_reg(instr.rd, self._alu_r(state, op, instr.rs1,
                                                instr.rs2))
        elif op in enc.I_ALU:
            state.set_reg(instr.rd, self._alu_i(state, op, instr.rs1,
                                                instr.imm))
        elif op in enc.LOADS:
            if not self._load(state, instr, outcome):
                return
        elif op in enc.STORES:
            if not self._store(state, instr, outcome):
                return
        elif op in enc.BRANCHES:
            taken_pc = (state.pc + instr.imm) & MASK32
            self._branch(state, instr, taken_pc, next_pc, outcome)
            return
        elif op == enc.JAL:
            if instr.rd:
                state.set_reg(instr.rd, next_pc)
            state.pc = (state.pc + instr.imm) & MASK32
            return
        elif op == enc.JALR:
            target = self._jalr_target(state, instr, outcome)
            if target is None:
                return
            if instr.rd:
                state.set_reg(instr.rd, next_pc)
            state.pc = target
            return
        elif op == enc.HALT:
            code = state.reg(instr.rs1)
            if not isinstance(code, int):
                code = self.solver.eval_one(code, state.constraints) or 0
            state.status = STATUS_HALTED
            state.halt_code = code
            return
        elif op == enc.IRET:
            if not state.in_irq:
                self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                          "iret outside interrupt")
                return
            state.in_irq = False
            state.pc = state.irq_return_pc
            return
        elif op == enc.HS:
            if not self._intrinsic(state, instr, outcome):
                return
        else:  # pragma: no cover - guarded by is_valid_opcode
            raise VmError(f"unhandled opcode {op:#x}")
        state.pc = next_pc

    # -- per-opcode handlers (fast tier) ------------------------------------------------
    #
    # Same semantics as the _execute chain above, reached through the
    # handler table with the fully-concrete cases inlined over the
    # plain-int semantics tables (no BitVec boxing, no solver).

    def _op_alu_r(self, state: ExecState, instr: enc.Instruction,
                  outcome: StepOutcome) -> None:
        regs = state.regs
        a, b = regs[instr.rs1], regs[instr.rs2]
        if isinstance(a, int) and isinstance(b, int):
            regs[instr.rd] = ALU_R_OPS[instr.opcode](a, b)
        else:
            state.set_reg(instr.rd, _symbolic_alu_r(
                instr.opcode, state.reg_expr(instr.rs1),
                state.reg_expr(instr.rs2)))
        state.pc += 4

    def _op_alu_i(self, state: ExecState, instr: enc.Instruction,
                  outcome: StepOutcome) -> None:
        regs = state.regs
        a = regs[instr.rs1]
        if isinstance(a, int):
            regs[instr.rd] = ALU_I_OPS[instr.opcode](a, instr.imm)
        else:
            state.set_reg(instr.rd, _symbolic_alu_i(
                instr.opcode, state.reg_expr(instr.rs1), instr.imm))
        state.pc += 4

    def _op_load(self, state: ExecState, instr: enc.Instruction,
                 outcome: StepOutcome) -> None:
        if self._load(state, instr, outcome):
            state.pc += 4

    def _op_store(self, state: ExecState, instr: enc.Instruction,
                  outcome: StepOutcome) -> None:
        if self._store(state, instr, outcome):
            state.pc += 4

    def _op_branch(self, state: ExecState, instr: enc.Instruction,
                   outcome: StepOutcome) -> None:
        regs = state.regs
        a, b = regs[instr.rd], regs[instr.rs1]
        if isinstance(a, int) and isinstance(b, int):
            if BRANCH_OPS[instr.opcode](a, b):
                state.pc = (state.pc + instr.imm) & MASK32
            else:
                state.pc += 4
            return
        self._branch(state, instr, (state.pc + instr.imm) & MASK32,
                     state.pc + 4, outcome)

    def _op_jal(self, state: ExecState, instr: enc.Instruction,
                outcome: StepOutcome) -> None:
        if instr.rd:
            state.regs[instr.rd] = (state.pc + 4) & MASK32
        state.pc = (state.pc + instr.imm) & MASK32

    def _op_jalr(self, state: ExecState, instr: enc.Instruction,
                 outcome: StepOutcome) -> None:
        target = self._jalr_target(state, instr, outcome)
        if target is None:
            return
        if instr.rd:
            state.regs[instr.rd] = (state.pc + 4) & MASK32
        state.pc = target

    def _op_halt(self, state: ExecState, instr: enc.Instruction,
                 outcome: StepOutcome) -> None:
        code = state.reg(instr.rs1)
        if not isinstance(code, int):
            code = self.solver.eval_one(code, state.constraints) or 0
        state.status = STATUS_HALTED
        state.halt_code = code

    def _op_iret(self, state: ExecState, instr: enc.Instruction,
                 outcome: StepOutcome) -> None:
        if not state.in_irq:
            self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                      "iret outside interrupt")
            return
        state.in_irq = False
        state.pc = state.irq_return_pc

    def _op_hs(self, state: ExecState, instr: enc.Instruction,
               outcome: StepOutcome) -> None:
        if self._intrinsic(state, instr, outcome):
            state.pc += 4

    # -- ALU -------------------------------------------------------------------------------

    def _alu_r(self, state: ExecState, op: int, rs1: int, rs2: int) -> Value:
        a, b = state.reg(rs1), state.reg(rs2)
        if isinstance(a, int) and isinstance(b, int):
            return _concrete_alu_r(op, a, b)
        ea, eb = state.reg_expr(rs1), state.reg_expr(rs2)
        return _symbolic_alu_r(op, ea, eb)

    def _alu_i(self, state: ExecState, op: int, rs1: int, imm: int) -> Value:
        a = state.reg(rs1)
        if isinstance(a, int):
            return _concrete_alu_i(op, a, imm)
        return _symbolic_alu_i(op, state.reg_expr(rs1), imm)

    # -- branches ------------------------------------------------------------------------------

    def _branch(self, state: ExecState, instr: enc.Instruction,
                taken_pc: int, fall_pc: int, outcome: StepOutcome) -> None:
        a, b = state.reg(instr.rd), state.reg(instr.rs1)
        if isinstance(a, int) and isinstance(b, int):
            state.pc = taken_pc if _concrete_branch(instr.opcode, a, b) \
                else fall_pc
            return
        cond = _symbolic_branch(instr.opcode, state.reg_expr(instr.rd),
                                state.reg_expr(instr.rs1))
        can_take = self.solver.may_be_true(cond, state.constraints)
        can_fall = self.solver.may_be_true(E.not_(cond), state.constraints)
        if can_take and can_fall:
            # Fork: the scheduled state takes the branch, the fork falls
            # through. Per Algorithm 1, the fork owns a cloned snapshot.
            fork = state.fork()
            fork.add_constraint(E.not_(cond))
            fork.pc = fall_pc
            state.add_constraint(cond)
            state.pc = taken_pc
            outcome.forks.append(fork)
            self.sat_forks += 1
        elif can_take:
            state.add_constraint(cond)
            state.pc = taken_pc
        elif can_fall:
            state.add_constraint(E.not_(cond))
            state.pc = fall_pc
        else:
            state.status = STATUS_TERMINATED
            state.error = "infeasible path condition"

    def _jalr_target(self, state: ExecState, instr: enc.Instruction,
                     outcome: StepOutcome) -> Optional[int]:
        base = state.reg(instr.rs1)
        if isinstance(base, int):
            return (base + instr.imm) & MASK32
        expr = E.add(state.reg_expr(instr.rs1), E.const(instr.imm, 32))
        pairs = self.bridge.concretize(state, expr, "jump target") \
            if self.bridge else [(state, self.solver.eval_one(
                expr, state.constraints) or 0)]
        # Siblings (completeness mode) re-execute the jalr when scheduled.
        outcome.forks.extend(s for s, _ in pairs[1:])
        return pairs[0][1]

    # -- memory ----------------------------------------------------------------------------------

    def _resolve_addr(self, state: ExecState, instr: enc.Instruction,
                      outcome: StepOutcome) -> Optional[int]:
        base = state.reg(instr.rs1)
        if isinstance(base, int):
            return (base + instr.imm) & MASK32
        expr = E.add(state.reg_expr(instr.rs1), E.const(instr.imm, 32))
        if self.bridge is not None:
            pairs = self.bridge.concretize(state, expr, "memory address")
        else:
            got = self.solver.eval_one(expr, state.constraints)
            if got is None:
                state.status = STATUS_TERMINATED
                return None
            state.add_constraint(E.eq(expr, E.const(got, 32)))
            pairs = [(state, got)]
        outcome.forks.extend(s for s, _ in pairs[1:])
        return pairs[0][1]

    def _load(self, state: ExecState, instr: enc.Instruction,
              outcome: StepOutcome) -> bool:
        addr = self._resolve_addr(state, instr, outcome)
        if addr is None:
            return False
        size = 4 if instr.opcode == enc.LW else 1
        if addr >= self.mmio_base:
            if self.bridge is None:
                self._bug(state, outcome, D.KIND_UNMAPPED_MMIO,
                          f"MMIO load at 0x{addr:x} without hardware")
                return False
            word = self.bridge.read(addr & ~3)
            if size == 1:
                word = (word >> ((addr & 3) * 8)) & 0xFF
            value: Value = word
        else:
            if addr + size > self.ram_size:
                self._bug(state, outcome, D.KIND_OOB_READ,
                          f"load at 0x{addr:x}")
                return False
            value = state.memory.read(addr, size)
        if instr.opcode == enc.LB:
            value = _sign_extend_byte(value)
        elif instr.opcode == enc.LBU and isinstance(value, E.BitVec):
            value = E.zext(value, 32)
        state.set_reg(instr.rd, value)
        return True

    def _store(self, state: ExecState, instr: enc.Instruction,
               outcome: StepOutcome) -> bool:
        addr = self._resolve_addr(state, instr, outcome)
        if addr is None:
            return False
        size = 4 if instr.opcode == enc.SW else 1
        value = state.reg(instr.rd)
        if addr >= self.mmio_base:
            if self.bridge is None:
                self._bug(state, outcome, D.KIND_UNMAPPED_MMIO,
                          f"MMIO store at 0x{addr:x} without hardware")
                return False
            pairs = self.bridge.concretize(state, value, "MMIO store value")
            outcome.forks.extend(s for s, _ in pairs[1:])
            state, concrete = pairs[0]
            if size == 1:
                # Read-modify-write for byte stores into 32-bit registers.
                word = self.bridge.read(addr & ~3)
                shift = (addr & 3) * 8
                word = (word & ~(0xFF << shift)) | ((concrete & 0xFF) << shift)
                self.bridge.write(addr & ~3, word)
            else:
                self.bridge.write(addr & ~3, concrete)
            return True
        if addr + size > self.ram_size:
            self._bug(state, outcome, D.KIND_OOB_WRITE,
                      f"store at 0x{addr:x}")
            return False
        state.memory.write(addr, value, size)
        return True

    # -- intrinsics ----------------------------------------------------------------------------------

    def _intrinsic(self, state: ExecState, instr: enc.Instruction,
                   outcome: StepOutcome) -> bool:
        func = instr.imm & 0xFF
        if func == enc.HS_SYMBOLIC:
            self._sym_counter += 1
            state.set_reg(instr.rd,
                          E.var(f"sym_{self._sym_counter}", 32))
            return True
        if func == enc.HS_SYMBOLIC_BYTES:
            # symbuf rptr(rs1), rlen(rd): make the buffer symbolic.
            ptr = state.reg(instr.rs1)
            length = state.reg(instr.rd)
            if not isinstance(ptr, int) or not isinstance(length, int):
                self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                          "symbuf needs concrete pointer and length")
                return False
            if ptr + length > self.ram_size:
                self._bug(state, outcome, D.KIND_OOB_WRITE,
                          f"symbuf range 0x{ptr:x}+{length}")
                return False
            self._sym_counter += 1
            base = self._sym_counter
            for i in range(length):
                state.memory.write_byte(
                    ptr + i, E.var(f"buf_{base}_{i}", 8))
            return True
        if func == enc.HS_ASSUME:
            cond = _truthy(state, instr.rs1)
            if isinstance(cond, bool):
                if not cond:
                    state.status = STATUS_TERMINATED
                    state.error = "assume failed (concrete)"
                    return False
                return True
            if not self.solver.may_be_true(cond, state.constraints):
                state.status = STATUS_TERMINATED
                state.error = "assume infeasible"
                return False
            state.add_constraint(cond)
            return True
        if func == enc.HS_ASSERT:
            cond = _truthy(state, instr.rs1)
            if isinstance(cond, bool):
                if not cond:
                    self._bug(state, outcome, D.KIND_ASSERTION,
                              "concrete assertion failed")
                    return False
                return True
            neg = E.not_(cond)
            counterexample = self.solver.check(
                list(state.constraints) + [neg])
            if counterexample.is_sat:
                self._bug(state, outcome, D.KIND_ASSERTION,
                          "assertion can fail",
                          model=counterexample.model)
                return False
            state.add_constraint(cond)
            return True
        if func == enc.HS_SET_IVT:
            handler = state.reg(instr.rs1)
            if not isinstance(handler, int):
                handler = self.solver.eval_one(handler, state.constraints) or 0
            state.irq_handler = handler
            return True
        if func == enc.HS_EI:
            state.irq_enabled = True
            return True
        if func == enc.HS_DI:
            state.irq_enabled = False
            return True
        if func == enc.HS_TRACE:
            mark = state.reg(instr.rs1)
            if not isinstance(mark, int):
                mark = self.solver.eval_one(mark, state.constraints) or 0
            state.trace_marks.append(mark)
            return True
        self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                  f"unknown intrinsic {func}")
        return False

    # -- bug reporting ------------------------------------------------------------------------------------

    def _bug(self, state: ExecState, outcome: StepOutcome, kind: str,
             detail: str, model=None) -> None:
        if model is None:
            result = self.solver.check(state.constraints)
            model = result.model if result.is_sat else {}
        bug = D.Bug(
            kind=kind,
            pc=state.pc,
            state_id=state.state_id,
            detail=detail,
            test_case=D.model_to_test_case(model),
            hw_snapshot=state.hw_snapshot,
            backtrace=list(state.recent_pcs),
            steps=state.steps,
        )
        self.bugs.append(bug)
        outcome.bug = bug
        state.status = STATUS_ERROR
        state.error = f"{kind}: {detail}"


# ---------------------------------------------------------------------------
# ALU helpers
# ---------------------------------------------------------------------------

def _concrete_alu_r(op: int, a: int, b: int) -> int:
    return _alu_r(op, a, b, 0)


def _concrete_alu_i(op: int, a: int, imm: int) -> int:
    return _alu_i(op, a, imm, 0)


def _concrete_branch(op: int, a: int, b: int) -> bool:
    return _branch_taken(op, a, b)


def _symbolic_alu_r(op: int, a: E.BitVec, b: E.BitVec) -> E.BitVec:
    amount = E.and_(b, E.const(31, 32))
    if op == enc.ADD:
        return E.add(a, b)
    if op == enc.SUB:
        return E.sub(a, b)
    if op == enc.AND:
        return E.and_(a, b)
    if op == enc.OR:
        return E.or_(a, b)
    if op == enc.XOR:
        return E.xor(a, b)
    if op == enc.SLL:
        return E.shl(a, amount)
    if op == enc.SRL:
        return E.lshr(a, amount)
    if op == enc.SRA:
        return E.ashr(a, amount)
    if op == enc.MUL:
        return E.mul(a, b)
    if op == enc.DIVU:
        return E.ite(E.eq(b, E.const(0, 32)), E.const(MASK32, 32),
                     E.udiv(a, b))
    if op == enc.REMU:
        return E.ite(E.eq(b, E.const(0, 32)), a, E.urem(a, b))
    if op == enc.SLT:
        return E.zext(E.slt(a, b), 32)
    if op == enc.SLTU:
        return E.zext(E.ult(a, b), 32)
    raise VmError(f"not an R-type op {op:#x}")


def _symbolic_alu_i(op: int, a: E.BitVec, imm: int) -> E.BitVec:
    c = E.const(imm, 32)
    if op == enc.ADDI:
        return E.add(a, c)
    if op == enc.ANDI:
        return E.and_(a, c)
    if op == enc.ORI:
        return E.or_(a, c)
    if op == enc.XORI:
        return E.xor(a, c)
    if op == enc.SLLI:
        return E.shl(a, E.const(imm & 31, 32))
    if op == enc.SRLI:
        return E.lshr(a, E.const(imm & 31, 32))
    if op == enc.SRAI:
        return E.ashr(a, E.const(imm & 31, 32))
    if op == enc.LUI:
        return E.const((imm & 0xFFFF) << 16, 32)
    raise VmError(f"not an I-type op {op:#x}")


def _symbolic_branch(op: int, a: E.BitVec, b: E.BitVec) -> E.BitVec:
    if op == enc.BEQ:
        return E.eq(a, b)
    if op == enc.BNE:
        return E.ne(a, b)
    if op == enc.BLT:
        return E.slt(a, b)
    if op == enc.BGE:
        return E.sge(a, b)
    if op == enc.BLTU:
        return E.ult(a, b)
    if op == enc.BGEU:
        return E.uge(a, b)
    raise VmError(f"not a branch op {op:#x}")


def _sign_extend_byte(value: Value) -> Value:
    if isinstance(value, int):
        return (value - 256 if value & 0x80 else value) & MASK32
    if value.width > 8:
        value = E.extract(value, 7, 0)
    return E.sext(value, 32)


def _truthy(state: ExecState, reg: int):
    """Register as a boolean: Python bool if concrete, else a 1-bit expr."""
    value = state.reg(reg)
    if isinstance(value, int):
        return value != 0
    return E.ne(value, E.const(0, 32))
