"""Chunk-pool bookkeeping for cross-process snapshot transfer.

The wire format itself lives in :mod:`repro.core.persistence`
(:class:`SnapshotWire`). This module adds what a *conversation* needs:
each endpoint keeps a digest → body pool of every chunk it has seen and
tracks, per peer, which digests that peer holds — so a snapshot resend
carries only the chunks the receiver is missing. Chunk digests come from
:func:`repro.core.store.chunk_digest`, the same content addresses the
delta snapshot store deduplicates on; shipping a state to a worker that
already explored a sibling path typically moves reference-sized
metadata, not state payloads (the cross-process analogue of
``TransferRecord.delta_bits``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

from repro.core.persistence import (SnapshotWire, snapshot_from_wire,
                                    snapshot_to_wire)
from repro.core.store import chunk_digest
from repro.errors import SnapshotIntegrityError
from repro.targets.base import HwSnapshot


@dataclass
class WireStats:
    """Transfer accounting for one endpoint (summed over all peers)."""

    snapshots_sent: int = 0
    snapshots_received: int = 0
    #: Chunk references resolved from the peer's pool (no payload moved).
    chunk_hits: int = 0
    #: Chunk payloads actually shipped.
    chunk_misses: int = 0
    #: Full-image bits of every snapshot sent (the naive transfer cost).
    logical_bits_sent: int = 0
    #: Bits actually carried as chunk payloads (the delta transfer cost).
    payload_bits_sent: int = 0

    @property
    def delta_ratio(self) -> float:
        """Logical bits over transferred bits (≥ 1; higher = more dedup)."""
        if self.payload_bits_sent == 0:
            return 1.0 if self.logical_bits_sent == 0 else float("inf")
        return self.logical_bits_sent / self.payload_bits_sent

    def merge(self, other: "WireStats") -> None:
        self.snapshots_sent += other.snapshots_sent
        self.snapshots_received += other.snapshots_received
        self.chunk_hits += other.chunk_hits
        self.chunk_misses += other.chunk_misses
        self.logical_bits_sent += other.logical_bits_sent
        self.payload_bits_sent += other.payload_bits_sent


class ChunkChannel:
    """One endpoint's view of snapshot traffic with its peers.

    ``pool`` holds every chunk body this endpoint has seen (sent *or*
    received — a digest we sent may come back by reference only).
    ``known[peer]`` is the digest set we believe that peer holds; it
    grows symmetrically on send and receive, so both endpoints agree on
    it without a handshake.
    """

    def __init__(self) -> None:
        self.pool: Dict[str, dict] = {}
        self.chunk_bits: Dict[str, int] = {}
        self.known: Dict[object, Set[str]] = {}
        self.stats = WireStats()

    def _peer(self, peer: object) -> Set[str]:
        return self.known.setdefault(peer, set())

    # -- sending ------------------------------------------------------------

    def encode(self, snapshot: HwSnapshot, peer: object,
               bits_of: Optional[Mapping[str, int]] = None) -> SnapshotWire:
        """Encode *snapshot* for *peer*, omitting chunks it holds."""
        known = self._peer(peer)
        wire = snapshot_to_wire(snapshot, known=known, bits_of=bits_of)
        for name, (digest, _cycle, bits) in wire.refs.items():
            if digest in known:
                self.stats.chunk_hits += 1
            else:
                self.stats.chunk_misses += 1
            known.add(digest)
            # Keep our own copy: the peer may later reference this
            # digest back at us without a payload.
            if digest not in self.pool:
                body, _ = wire.chunks.get(digest, (None, 0))
                if body is None:
                    body = {k: v for k, v in snapshot.states[name].items()
                            if k != "cycle"}
                self.pool[digest] = body
                self.chunk_bits[digest] = bits
        self.stats.snapshots_sent += 1
        self.stats.logical_bits_sent += wire.logical_bits
        self.stats.payload_bits_sent += wire.payload_bits
        return wire

    def reencode(self, wire: SnapshotWire, peer: object) -> SnapshotWire:
        """Re-address a received wire to another peer (coordinator
        forwarding a state between workers), filling payloads from the
        pool for chunks the new peer lacks."""
        known = self._peer(peer)
        chunks = {}
        for name, (digest, _cycle, bits) in wire.refs.items():
            if digest in known:
                self.stats.chunk_hits += 1
            else:
                self.stats.chunk_misses += 1
                chunks[digest] = (self.pool[digest],
                                  self.chunk_bits.get(digest, bits))
                known.add(digest)
        out = SnapshotWire(refs=dict(wire.refs), chunks=chunks,
                           method=wire.method, bits=wire.bits)
        self.stats.snapshots_sent += 1
        self.stats.logical_bits_sent += out.logical_bits
        self.stats.payload_bits_sent += out.payload_bits
        return out

    # -- receiving ----------------------------------------------------------

    def absorb(self, wire: SnapshotWire, peer: object) -> None:
        """Merge a received wire's chunks into the pool and credit the
        sender with everything it referenced.

        Every shipped payload is verified against its content address
        before entering the pool: chunk digests *are* the transfer's
        integrity check (delta-sized cost — references are not re-hashed,
        their bodies were verified when they first arrived)."""
        known = self._peer(peer)
        for digest, (body, bits) in wire.chunks.items():
            actual = chunk_digest(body)
            if actual != digest:
                raise SnapshotIntegrityError(
                    f"chunk from peer {peer!r} fails verification: "
                    f"declared {digest}, body hashes to {actual}")
            self.pool.setdefault(digest, body)
            self.chunk_bits.setdefault(digest, bits)
            known.add(digest)
        for _name, (digest, _cycle, bits) in wire.refs.items():
            known.add(digest)
            self.chunk_bits.setdefault(digest, bits)
        self.stats.snapshots_received += 1

    def decode(self, wire: SnapshotWire, peer: object) -> HwSnapshot:
        """absorb + reassemble into a (foreign) HwSnapshot."""
        self.absorb(wire, peer)
        return snapshot_from_wire(wire, self.pool)
