"""Packed binary job envelopes for the batch protocol.

One ``mp.Queue`` message used to carry one pickled job dict per lease or
fuzz shard. This module replaces that with struct-packed **batch**
envelopes: little-endian framed headers, length-prefixed bodies read
through ``memoryview`` slices (no intermediate copies on the decode
path), and pickle confined to the payloads that are genuinely Python
objects (execution states, chunk bodies, stats dataclasses).

Every envelope also carries the transport's piggyback lane:

* **acks** — per-segment consumption counts the receiver's
  :class:`~repro.parallel.shm.ArenaReader` owes the sender's arena,
* **evictions** — chunk digests this endpoint dropped from its
  :class:`~repro.parallel.wire.ChunkChannel` pool under the LRU cap, so
  the peer stops sending reference-only wires for them,
* **state evictions** — page digests dropped from the
  :class:`~repro.parallel.statewire.StateWire` page pool, same
  contract at the software-state layer.

Software states travel as :mod:`~repro.parallel.statewire` records —
a u8 kind (full pickle or delta), the packed record, and for deltas
the missing page bodies staged through the same transport chunk plane
as snapshot chunks (so large pages ride shared memory).

Snapshot wires are packed field-by-field (refs table, method, bits) with
their chunk plane delegated to the :class:`Transport` — inline pickled
bodies on the queue path, shared-memory references on the shm path. The
receiving side reassembles a :class:`SnapshotWire` whose bodies then
pass through ``ChunkChannel.absorb``'s digest verification exactly as
before: the envelope changes how bytes travel, not what is trusted.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.persistence import SnapshotWire

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_PICKLE = pickle.HIGHEST_PROTOCOL


class _Cursor:
    """Sequential reader over an envelope's memoryview."""

    __slots__ = ("mv", "pos")

    def __init__(self, buf) -> None:
        self.mv = memoryview(buf)
        self.pos = 0

    def _take(self, fmt: struct.Struct) -> int:
        value, = fmt.unpack_from(self.mv, self.pos)
        self.pos += fmt.size
        return value

    def u8(self) -> int:
        return self._take(_U8)

    def u16(self) -> int:
        return self._take(_U16)

    def u32(self) -> int:
        return self._take(_U32)

    def u64(self) -> int:
        return self._take(_U64)

    def i64(self) -> int:
        return self._take(_I64)

    def f64(self) -> float:
        value, = _F64.unpack_from(self.mv, self.pos)
        self.pos += _F64.size
        return value

    def blob(self) -> bytes:
        n = self.u32()
        data = bytes(self.mv[self.pos:self.pos + n])
        self.pos += n
        return data

    def text(self) -> str:
        n = self.u16()
        data = bytes(self.mv[self.pos:self.pos + n])
        self.pos += n
        return data.decode("utf-8")

    def obj(self) -> Any:
        return pickle.loads(self.blob())


def _put_blob(out: List[bytes], data: bytes) -> None:
    out.append(_U32.pack(len(data)))
    out.append(data)


def _put_text(out: List[bytes], text: str) -> None:
    data = text.encode("utf-8")
    out.append(_U16.pack(len(data)))
    out.append(data)


def _put_obj(out: List[bytes], obj: Any) -> None:
    _put_blob(out, pickle.dumps(obj, protocol=_PICKLE))


# -- piggyback lane (acks + evictions) --------------------------------------

def _put_piggyback(out: List[bytes], acks: Dict[str, int],
                   evictions: Sequence[str],
                   state_evictions: Sequence[str] = ()) -> None:
    out.append(_U32.pack(len(acks)))
    for segment, count in acks.items():
        _put_text(out, segment)
        out.append(_U32.pack(count))
    out.append(_U32.pack(len(evictions)))
    for digest in evictions:
        _put_text(out, digest)
    out.append(_U32.pack(len(state_evictions)))
    for digest in state_evictions:
        _put_text(out, digest)


def _read_piggyback(cur: _Cursor) -> Tuple[Dict[str, int], List[str],
                                           List[str]]:
    acks = {cur.text(): cur.u32() for _ in range(cur.u32())}
    evictions = [cur.text() for _ in range(cur.u32())]
    state_evictions = [cur.text() for _ in range(cur.u32())]
    return acks, evictions, state_evictions


# -- snapshot wires ----------------------------------------------------------

def _put_wire(out: List[bytes], wire: SnapshotWire,
              transport, peer: object) -> None:
    """Pack *wire*, staging its chunk bodies through *transport* (inline
    on the queue path, shared memory on the shm path)."""
    _put_text(out, wire.method)
    out.append(_U64.pack(wire.bits))
    out.append(_U32.pack(len(wire.refs)))
    for name, (digest, cycle, bits) in wire.refs.items():
        _put_text(out, name)
        _put_text(out, digest)
        out.append(_U64.pack(cycle))
        out.append(_U64.pack(bits))
    mode, payload = transport.place_chunks(wire.chunks, peer)
    _put_text(out, mode)
    _put_obj(out, payload)


def _read_wire(cur: _Cursor, transport, peer: object) -> SnapshotWire:
    method = cur.text()
    bits = cur.u64()
    refs = {}
    for _ in range(cur.u32()):
        name = cur.text()
        digest = cur.text()
        cycle = cur.u64()
        ref_bits = cur.u64()
        refs[name] = (digest, cycle, ref_bits)
    mode = cur.text()
    payload = cur.obj()
    chunks = transport.resolve_chunks(mode, payload, peer)
    return SnapshotWire(refs=refs, chunks=chunks, method=method, bits=bits)


def _put_state_record(out: List[bytes], kind: int, record: bytes,
                      bodies: Dict[str, bytes], transport,
                      peer: object) -> None:
    """One software-state record: u8 kind, record blob, and (delta
    kind only) the page-body chunk plane staged through *transport* —
    inline on the queue path, shared-memory references on the shm
    path, exactly like hardware snapshot chunks."""
    out.append(_U8.pack(kind))
    _put_blob(out, record)
    if kind == 2:  # statewire.KIND_DELTA
        mode, payload = transport.place_chunks(
            {digest: (body, len(body) * 8)
             for digest, body in bodies.items()}, peer)
        _put_text(out, mode)
        _put_obj(out, payload)


def _read_state_record(cur: _Cursor, transport, peer: object
                       ) -> Tuple[int, bytes, Dict[str, bytes]]:
    kind = cur.u8()
    record = cur.blob()
    bodies: Dict[str, bytes] = {}
    if kind == 2:
        mode = cur.text()
        payload = cur.obj()
        resolved = transport.resolve_chunks(mode, payload, peer)
        bodies = {digest: body for digest, (body, _bits)
                  in resolved.items()}
    return kind, record, bodies


def _put_shipped(out: List[bytes],
                 shipped: Tuple[int, bytes, Dict[str, bytes], SnapshotWire],
                 transport, peer: object) -> None:
    kind, record, bodies, wire = shipped
    _put_state_record(out, kind, record, bodies, transport, peer)
    _put_wire(out, wire, transport, peer)


def _read_shipped(cur: _Cursor, transport, peer: object
                  ) -> Tuple[int, bytes, Dict[str, bytes], SnapshotWire]:
    kind, record, bodies = _read_state_record(cur, transport, peer)
    return kind, record, bodies, _read_wire(cur, transport, peer)


# -- lease batches (coordinator -> worker) -----------------------------------

def pack_lease_batch(leases: Sequence[Dict[str, Any]], transport,
                     peer: object, acks: Dict[str, int],
                     evictions: Sequence[str] = (),
                     state_evictions: Sequence[str] = (),
                     statewire=None) -> bytes:
    """Each lease: ``{budget, sym_base, state: ExecState|bytes|None,
    wire: SnapshotWire|None}`` (the structured form the recovery ladder
    re-addresses). Live states are encoded *here* — at pack time —
    through *statewire*, so a re-pack after a respawn re-encodes
    against the fresh peer context (``force_full`` marks leases the
    recovery ladder re-addressed to a cold registry). Raw ``bytes``
    states (pre-pickled, or no statewire) ship as full records."""
    out: List[bytes] = []
    _put_piggyback(out, acks, evictions, state_evictions)
    out.append(_U32.pack(len(leases)))
    for lease in leases:
        out.append(_U64.pack(lease["budget"]))
        out.append(_U64.pack(lease["sym_base"]))
        state = lease.get("state")
        if state is None:
            out.append(_U8.pack(0))
            continue
        if isinstance(state, (bytes, bytearray, memoryview)):
            kind, record, bodies = 1, bytes(state), {}
        elif statewire is not None:
            kind, record, bodies = statewire.encode_state(
                state, peer, force_full=lease.get("force_full", False))
        else:
            kind, record, bodies = 1, pickle.dumps(
                state, protocol=_PICKLE), {}
        _put_state_record(out, kind, record, bodies, transport, peer)
        _put_wire(out, lease["wire"], transport, peer)
    return b"".join(out)


def unpack_lease_batch(buf, transport, peer: object
                       ) -> Tuple[Dict[str, int], List[str], List[str],
                                  List[Dict[str, Any]]]:
    cur = _Cursor(buf)
    acks, evictions, state_evictions = _read_piggyback(cur)
    leases = []
    for _ in range(cur.u32()):
        lease: Dict[str, Any] = {"budget": cur.u64(),
                                 "sym_base": cur.u64()}
        kind = cur.u8()
        if kind:
            cur.pos -= 1
            kind, record, bodies = _read_state_record(cur, transport, peer)
            lease["state"] = record
            lease["state_kind"] = kind
            lease["state_chunks"] = bodies
            lease["wire"] = _read_wire(cur, transport, peer)
        else:
            lease["state"] = None
            lease["state_kind"] = 0
            lease["state_chunks"] = {}
            lease["wire"] = None
        leases.append(lease)
    return acks, evictions, state_evictions, leases


# -- lease results (worker -> coordinator) -----------------------------------

def pack_lease_results(results: Sequence[Dict[str, Any]], transport,
                       peer: object, acks: Dict[str, int],
                       evictions: Sequence[str] = (),
                       state_evictions: Sequence[str] = (),
                       encode_s: float = 0.0,
                       decode_s: float = 0.0) -> bytes:
    """Each result is one ``EngineWorker.run_lease`` dict; shipped
    states (continuation + children) are packed as
    (kind, record, page bodies, wire) tuples, everything else rides as
    one pickled meta blob.

    The two timing floats sit at offset 0 so the sender can
    :func:`stamp_encode_time` *after* packing (the pack time is only
    known once packing finished)."""
    out: List[bytes] = []
    out.append(_F64.pack(encode_s))
    out.append(_F64.pack(decode_s))
    _put_piggyback(out, acks, evictions, state_evictions)
    out.append(_U32.pack(len(results)))
    for res in results:
        meta = {k: v for k, v in res.items()
                if k not in ("continuation", "children")}
        _put_obj(out, meta)
        continuation = res["continuation"]
        if continuation is None:
            out.append(_U8.pack(0))
        else:
            out.append(_U8.pack(1))
            _put_shipped(out, continuation, transport, peer)
        children = res["children"]
        out.append(_U32.pack(len(children)))
        for child in children:
            _put_shipped(out, child, transport, peer)
    return b"".join(out)


def unpack_lease_results(buf, transport, peer: object
                         ) -> Tuple[Dict[str, int], List[str], List[str],
                                    float, float, List[Dict[str, Any]]]:
    cur = _Cursor(buf)
    encode_s = cur.f64()
    decode_s = cur.f64()
    acks, evictions, state_evictions = _read_piggyback(cur)
    results = []
    for _ in range(cur.u32()):
        res = cur.obj()
        res["continuation"] = (_read_shipped(cur, transport, peer)
                               if cur.u8() else None)
        res["children"] = [_read_shipped(cur, transport, peer)
                           for _ in range(cur.u32())]
        results.append(res)
    return acks, evictions, state_evictions, encode_s, decode_s, results


# -- fuzz batches (coordinator -> worker) ------------------------------------

def pack_fuzz_batch(items: Sequence[Tuple[int, bytes]],
                    acks: Dict[str, int],
                    evictions: Sequence[str] = ()) -> bytes:
    out: List[bytes] = []
    _put_piggyback(out, acks, evictions)
    out.append(_U32.pack(len(items)))
    for index, data in items:
        out.append(_U32.pack(index))
        _put_blob(out, data)
    return b"".join(out)


def unpack_fuzz_batch(buf) -> Tuple[Dict[str, int], List[str],
                                    List[Tuple[int, bytes]]]:
    cur = _Cursor(buf)
    acks, evictions, _state_evictions = _read_piggyback(cur)
    items = [(cur.u32(), cur.blob()) for _ in range(cur.u32())]
    return acks, evictions, items


# -- fuzz results (worker -> coordinator) ------------------------------------

def pack_fuzz_results(res: Dict[str, Any], acks: Dict[str, int],
                      evictions: Sequence[str] = (),
                      encode_s: float = 0.0,
                      decode_s: float = 0.0) -> bytes:
    """*res* is one ``FuzzWorker.run_batch`` dict: results are
    ``(index, data, packed_edges, crash|None, pc)`` rows. Timing floats
    sit at offset 0 for :func:`stamp_encode_time`."""
    out: List[bytes] = []
    out.append(_F64.pack(encode_s))
    out.append(_F64.pack(decode_s))
    _put_piggyback(out, acks, evictions)
    out.append(_F64.pack(res["modelled_dt"]))
    out.append(_U32.pack(res["resets"]))
    _put_obj(out, res["resilience"])
    out.append(_U32.pack(len(res["results"])))
    for index, data, edges, crash, pc in res["results"]:
        out.append(_U32.pack(index))
        _put_blob(out, data)
        _put_blob(out, edges)
        if crash is None:
            out.append(_U8.pack(0))
        else:
            out.append(_U8.pack(1))
            _put_text(out, crash)
        out.append(_I64.pack(pc))
    return b"".join(out)


def unpack_fuzz_results(buf) -> Tuple[Dict[str, int], List[str],
                                      float, float, Dict[str, Any]]:
    cur = _Cursor(buf)
    encode_s = cur.f64()
    decode_s = cur.f64()
    acks, evictions, _state_evictions = _read_piggyback(cur)
    res: Dict[str, Any] = {"modelled_dt": cur.f64(),
                           "resets": cur.u32(),
                           "resilience": cur.obj()}
    results: List[Tuple[int, bytes, bytes, Optional[str], int]] = []
    for _ in range(cur.u32()):
        index = cur.u32()
        data = cur.blob()
        edges = cur.blob()
        crash = cur.text() if cur.u8() else None
        pc = cur.i64()
        results.append((index, data, edges, crash, pc))
    res["results"] = results
    return acks, evictions, encode_s, decode_s, res


def stamp_encode_time(buf: bytearray, seconds: float) -> None:
    """Patch a result envelope's ``encode_s`` field (offset 0) after
    packing — the pack time is only measurable once packing is done."""
    _F64.pack_into(buf, 0, seconds)


__all__ = [
    "pack_lease_batch", "unpack_lease_batch",
    "pack_lease_results", "unpack_lease_results",
    "pack_fuzz_batch", "unpack_fuzz_batch",
    "pack_fuzz_results", "unpack_fuzz_results",
    "stamp_encode_time",
]
