"""Regeneration of the paper's Table I: comparison with related work.

The table is qualitative — a feature matrix over the dynamic-analysis
approaches for embedded systems. We regenerate it from a structured
registry (rather than a hard-coded string) and additionally *verify the
HardSnap column against the implementation*: each claimed capability maps
to a predicate evaluated on this library (see
``benchmarks/test_table1_comparison.py``).

Legend (as in the paper): abstraction level L = Logical (RTL), P =
Physical, B = Behavioral; check = yes, cross = no, n/a = not applicable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.tables import format_table

YES = "yes"
NO = "no"
NA = "n/a"
PARTIAL = "limited"

ROWS = [
    "Abstraction Level",
    "Symbolic Execution",
    "Full Visibility",
    "Full Controllability",
    "Ensure HW/SW Consistency",
    "Automated Peripheral Modeling",
    "Fast Forwarding",
    "Open-source",
]


@dataclass
class Approach:
    name: str
    category: str
    abstraction: str
    symbolic: str
    visibility: str
    controllability: str
    consistency: str
    auto_modeling: str
    fast_forwarding: str
    open_source: str

    def column(self) -> List[str]:
        return [self.abstraction, self.symbolic, self.visibility,
                self.controllability, self.consistency, self.auto_modeling,
                self.fast_forwarding, self.open_source]


APPROACHES: List[Approach] = [
    Approach("S2E", "full-emulation", "B", YES, YES, YES, YES, NO, PARTIAL,
             YES),
    Approach("QEMU+SystemC", "full-emulation", "B/L", NO, YES, YES, NA, NO,
             YES, YES),
    Approach("P2IM", "over-approx", "B", NO, NO, NO, NA, YES, NA, YES),
    Approach("HALucinator", "sub-approx", "B", NO, NO, NO, NA, YES, NA, YES),
    Approach("Pretender", "sub-approx", "B", NO, NO, NO, NA, YES, NA, YES),
    Approach("Avatar", "partial-emulation", "B/P", YES, NO, NO, NO, NO, NO,
             YES),
    Approach("Inception", "partial-emulation", "P", YES, NO, NO, NO, NA, YES,
             YES),
    Approach("Surrogates", "partial-emulation", "P", NO, NO, NO, NA, NA,
             PARTIAL, YES),
    Approach("Verilator", "simulation", "L", NO, YES, YES, NA, YES, NA, YES),
    Approach("FPGA", "emulation", "P", NO, NO, NO, NA, YES, NA, NA),
    Approach("HardSnap", "hybrid", "B/L/P", YES, YES, YES, YES, YES, YES,
             YES),
]


def hardsnap_capability_predicates() -> Dict[str, str]:
    """Map each HardSnap Table-I claim to the module that realises it —
    the benchmark evaluates these imports/behaviours."""
    return {
        "Symbolic Execution": "repro.vm.executor.SymbolicExecutor",
        "Full Visibility": "repro.targets.simulator.SimulatorTarget.peek",
        "Full Controllability":
            "repro.instrument.scan_chain.insert_scan_chain",
        "Ensure HW/SW Consistency": "repro.core.engine.SnapshotStrategy",
        "Automated Peripheral Modeling": "repro.hdl.elaborator.elaborate",
        "Fast Forwarding": "repro.targets.orchestrator.TargetOrchestrator",
        "Open-source": "repro",
    }


def render() -> str:
    headers = ["feature"] + [a.name for a in APPROACHES]
    rows = []
    for i, row_name in enumerate(ROWS):
        rows.append([row_name] + [a.column()[i] for a in APPROACHES])
    return format_table(headers, rows,
                        title="Table I: comparison with related work")
