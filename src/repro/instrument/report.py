"""Instrumentation overhead accounting (experiment E6) and the
machine-readable instrumentation report.

Builds the per-peripheral table the paper's §IV-A implies — how much
logic the scan-chain pass adds to each design in the corpus — and
:func:`machine_report`, the JSON-ready record combining overhead, chain
coverage and lint findings that the CLI and the benchmark artifacts use.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

from repro.hdl.ir import Design
from repro.instrument.emit_verilog import emit_verilog
from repro.instrument.scan_chain import ScanChainResult, insert_scan_chain


@dataclass
class OverheadRow:
    design: str
    flip_flops: int
    memory_bits: int
    chain_length: int
    added_muxes: int
    verilog_lines_before: int
    verilog_lines_after: int

    @property
    def mux_overhead_pct(self) -> float:
        """Added scan muxes relative to existing state bits."""
        if self.flip_flops + self.memory_bits == 0:
            return 0.0
        return 100.0 * self.added_muxes / (self.flip_flops + self.memory_bits)

    def to_dict(self) -> dict:
        out = asdict(self)
        out["mux_overhead_pct"] = round(self.mux_overhead_pct, 2)
        return out


def overhead_row(design: Design, clock: str = "clk",
                 result: Optional[ScanChainResult] = None) -> OverheadRow:
    """Measure the instrumentation overhead for one design."""
    if result is None:
        result = insert_scan_chain(design, clock)
    before = emit_verilog(design)
    after = emit_verilog(result.design)
    stats = design.stats()
    return OverheadRow(
        design=design.name,
        flip_flops=stats["flip_flops"],
        memory_bits=stats["memory_bits"],
        chain_length=result.chain_length,
        added_muxes=result.chain_length,
        verilog_lines_before=before.count("\n"),
        verilog_lines_after=after.count("\n"),
    )


def overhead_table(designs: Sequence[Design], clock: str = "clk") -> List[OverheadRow]:
    return [overhead_row(d, clock) for d in designs]


def machine_report(design: Design, result: Optional[ScanChainResult] = None,
                   clock: str = "clk", lint_report=None) -> dict:
    """One JSON-ready record describing the instrumentation of *design*.

    Combines the overhead accounting, the chain coverage map (threaded
    and excluded elements), and — when a
    :class:`repro.lint.LintReport` is passed — the lint findings, so one
    artifact answers both "what did instrumentation cost" and "is the
    snapshot provably consistent".
    """
    if result is None:
        result = insert_scan_chain(design, clock)
    row = overhead_row(design, clock=clock, result=result)
    report = {
        "design": design.name,
        "source_file": design.source_file,
        "overhead": row.to_dict(),
        "chain": {
            "length_bits": result.chain_length,
            "elements": [
                {"kind": e.kind, "name": e.name, "width": e.width,
                 "word": e.word}
                for e in result.elements
            ],
            "excluded": [
                {"kind": e.kind, "name": e.name, "bits": e.bits,
                 "reason": e.reason}
                for e in result.excluded
            ],
        },
    }
    if lint_report is not None:
        report["lint"] = lint_report.to_dict()
    return report


def format_overhead_table(rows: Sequence[OverheadRow]) -> str:
    header = (f"{'design':<16} {'FFs':>6} {'mem bits':>9} {'chain':>7} "
              f"{'muxes':>7} {'mux %':>7} {'LoC pre':>8} {'LoC post':>9}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.design:<16} {row.flip_flops:>6} {row.memory_bits:>9} "
            f"{row.chain_length:>7} {row.added_muxes:>7} "
            f"{row.mux_overhead_pct:>6.1f}% {row.verilog_lines_before:>8} "
            f"{row.verilog_lines_after:>9}")
    return "\n".join(lines)
