"""Tests for the snapshot-based coverage-guided fuzzer."""

import pytest

from repro.core import SnapshotFuzzer
from repro.errors import VmError
from repro.firmware import TIMER_BASE, fuzz_packet_parser
from repro.isa import assemble
from repro.peripherals import catalog
from repro.targets import FpgaTarget


@pytest.fixture(scope="module")
def program():
    return assemble(fuzz_packet_parser())


def _target():
    t = FpgaTarget(scan_mode="functional")
    t.add_peripheral(catalog.TIMER, TIMER_BASE)
    return t


SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 7])]


class TestFuzzer:
    def test_finds_planted_signed_length_bug(self, program):
        fuzzer = SnapshotFuzzer(program, _target(), seeds=SEEDS, seed=3)
        report = fuzzer.run(executions=300)
        assert report.crashes
        for crash in report.crashes:
            # cmd 1 with a "negative" length byte: the planted bug.
            assert crash.input_bytes[0] == 1
            assert crash.input_bytes[1] >= 0x80
            assert "assertion failed" in crash.reason

    def test_coverage_guided_corpus_growth(self, program):
        fuzzer = SnapshotFuzzer(program, _target(), seeds=[b"\x00"], seed=1)
        report = fuzzer.run(executions=200)
        assert report.corpus_size > 1       # new edges kept inputs
        assert report.edges_covered > 10

    def test_deterministic_with_seed(self, program):
        r1 = SnapshotFuzzer(program, _target(), seeds=SEEDS,
                            seed=7).run(executions=120)
        r2 = SnapshotFuzzer(program, _target(), seeds=SEEDS,
                            seed=7).run(executions=120)
        assert len(r1.crashes) == len(r2.crashes)
        assert r1.edges_covered == r2.edges_covered
        assert [c.input_bytes for c in r1.crashes] == \
            [c.input_bytes for c in r2.crashes]

    def test_snapshot_reset_restores_clean_state(self, program):
        """Each execution must start from the same post-boot hardware:
        a cmd-2 input programs the timer; the next execution must not see
        leftovers."""
        target = _target()
        fuzzer = SnapshotFuzzer(program, target,
                                seeds=[bytes([2, 31])], seed=0)
        fuzzer.run(executions=5)
        # After the run, restore once more and check the timer is clean.
        target.restore_snapshot(fuzzer._boot_snapshot)
        assert target.read(TIMER_BASE + 4) == 0  # LOAD back to reset value

    def test_reboot_mode_matches_coverage_but_slower(self, program):
        snap = SnapshotFuzzer(program, _target(), seeds=SEEDS,
                              reset="snapshot", seed=5).run(executions=100)
        reboot = SnapshotFuzzer(program, _target(), seeds=SEEDS,
                                reset="reboot", seed=5).run(executions=100)
        # Same exploration (deterministic mutations, same seed)...
        assert snap.edges_covered == reboot.edges_covered
        assert len(snap.crashes) == len(reboot.crashes)
        # ...but the reboot tax dominates modelled time.
        assert reboot.modelled_time_s > 20 * snap.modelled_time_s
        assert snap.execs_per_modelled_second > \
            100 * reboot.execs_per_modelled_second

    def test_bad_reset_mode_rejected(self, program):
        with pytest.raises(VmError):
            SnapshotFuzzer(program, _target(), reset="cold-boot")

    def test_hang_is_not_a_crash(self, program):
        """An input that spins forever hits the step budget and is simply
        dropped (embedded fuzzers treat hangs separately from crashes)."""
        fuzzer = SnapshotFuzzer(program, _target(), seeds=[bytes([2, 7])],
                                max_steps_per_exec=50, seed=0)
        report = fuzzer.run(executions=20)
        assert not report.crashes  # timer wait exceeds 50 steps: hang only
