"""Tests for repro.parallel.statewire — the delta-encoded software-state
wire.

The headline property: ``decode(encode(state))`` reproduces the state
**byte-identically** (``pickle.dumps`` equality — memory pages,
constraints, registers, lineage, bookkeeping) at every fork depth, so
swapping full pickles for deltas can never perturb parallel verdicts.
The rest pins down the codec's economics (pages by reference,
constraint suffixes, expression-table reuse) and its failure behaviour
(cold registries fall back to full pickles; divergence fails loudly).
"""

import pickle

import pytest

from repro.core import HardSnapSession
from repro.errors import SnapshotIntegrityError
from repro.firmware import TIMER_BASE, dispatcher
from repro.parallel import ParallelAnalysisEngine, StateWire, StateWireStats
from repro.parallel.statewire import KIND_DELTA, KIND_FULL
from repro.peripherals import catalog
from repro.resilience import FaultPlan
from repro.solver import expr as E
from repro.vm.memory import PAGE_SIZE, SymbolicMemory
from repro.vm.state import ExecState

TIMER = [(catalog.TIMER, TIMER_BASE)]
FIRMWARE = dispatcher(5, work_cycles=8)


def _root_state(mem_size: int = 16 * PAGE_SIZE) -> ExecState:
    """A root state with a few concrete pages, one symbolic page, and a
    seed constraint — shaped like a post-boot firmware state."""
    mem = SymbolicMemory(mem_size)
    mem.load_image({i: (i * 7 + 3) & 0xFF for i in range(600)})
    x = E.var("x", 32)
    mem.write(0x400, x, 4)  # symbolic page
    state = ExecState(memory=mem, pc=0x40)
    state.set_reg(0, 17)
    state.set_reg(1, E.add(x, E.const(5, 32)))
    state.add_constraint(E.ult(x, E.const(0x1000, 32)))
    return state


def _fork_chain(depth: int) -> list:
    """Root plus one fork per level; each level dirties one page and
    appends one constraint, like a branchy execution."""
    states = [_root_state()]
    for level in range(depth):
        child = states[-1].fork()
        child.pc += 4
        child.steps += 3
        child.memory.write(0x800 + (level % 8) * PAGE_SIZE,
                           0xA0 + (level & 0xF), 1)
        y = E.var(f"y{level % 5}", 32)
        child.add_constraint(E.eq(E.and_(y, E.const(level + 1, 32)),
                                  E.const(0, 32)))
        if level % 3 == 0:
            child.set_reg(2, E.xor(y, E.const(level, 32)))
        states.append(child)
    return states


def _roundtrip(sender, receiver, state, peer="w"):
    kind, record, bodies = sender.encode_state(state, peer)
    return kind, receiver.decode_state(kind, record, bodies, "c")


class TestByteIdenticalRoundTrip:
    @pytest.mark.parametrize("depth", [0, 1, 7, 33, 100])
    def test_fork_chain_roundtrips_byte_identically(self, depth):
        sender, receiver = StateWire(), StateWire()
        for state in _fork_chain(depth):
            ref = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            kind, back = _roundtrip(sender, receiver, state)
            assert kind == KIND_DELTA
            got = pickle.dumps(back, protocol=pickle.HIGHEST_PROTOCOL)
            assert got == ref, f"depth {state.depth} diverged"
            assert back.lineage == state.lineage
            assert back.regs == state.regs
            assert all(a is b for a, b in
                       zip(back.constraints, state.constraints))

    def test_lease_states_roundtrip_byte_identically(self):
        """Same property on states produced by a real engine lease
        (post-boot memory, solver-built constraints)."""
        session = HardSnapSession(dispatcher(4), TIMER)
        state = session.make_initial_state()
        outcome = session.engine.run_lease(state, max_instructions=0)
        shipped = ([state] if state.is_active else []) + list(outcome.forks)
        assert shipped
        sender, receiver = StateWire(), StateWire()
        for s in shipped:
            s.hw_snapshot = None
            ref = pickle.dumps(s, protocol=pickle.HIGHEST_PROTOCOL)
            _, back = _roundtrip(sender, receiver, s)
            assert pickle.dumps(
                back, protocol=pickle.HIGHEST_PROTOCOL) == ref

    def test_full_kind_roundtrips_and_warms_registries(self):
        sender, receiver = StateWire(), StateWire()
        root = _root_state()
        kind, record, bodies = sender.encode_state(root, "w",
                                                   force_full=True)
        assert kind == KIND_FULL and bodies == {}
        back = receiver.decode_state(kind, record, bodies, "c")
        assert pickle.dumps(back) == pickle.dumps(root)
        # The full ship warmed both ends: the next (delta) ship of a
        # fork references every unchanged page and ships only the
        # constraint suffix.
        child = root.fork()
        child.add_constraint(E.eq(E.var("z", 8), E.const(1, 8)))
        before = sender.stats.pages_shipped
        kind, record, bodies = sender.encode_state(child, "w")
        assert kind == KIND_DELTA
        assert sender.stats.pages_shipped == before  # all by reference
        back = receiver.decode_state(kind, record, bodies, "c")
        assert pickle.dumps(back) == pickle.dumps(child)


class TestDeltaEconomics:
    def test_unchanged_pages_travel_as_references(self):
        sender, receiver = StateWire(), StateWire()
        root = _root_state()
        _roundtrip(sender, receiver, root)
        first_shipped = sender.stats.pages_shipped
        assert first_shipped > 0
        child = root.fork()
        child.memory.write_byte(0x900, 0x5A)  # dirty exactly one page
        _roundtrip(sender, receiver, child)
        assert sender.stats.pages_shipped == first_shipped + 1
        assert sender.stats.pages_referenced >= first_shipped - 1

    def test_constraint_suffix_only(self):
        sender, receiver = StateWire(), StateWire()
        chain = _fork_chain(20)
        for state in chain:
            _roundtrip(sender, receiver, state)
        # Each ship after the root added exactly one constraint; the
        # registry lets every ship carry only that suffix.
        assert sender.stats.constraints_total == sum(
            len(s.constraints) for s in chain)
        assert sender.stats.constraints_suffix == len(chain)

    def test_shared_dag_nodes_serialize_once_per_peer(self):
        sender, receiver = StateWire(), StateWire()
        x = E.var("x", 32)
        a = _root_state()
        _roundtrip(sender, receiver, a)
        sent_after_first = sender.stats.expr_nodes_sent
        b = a.fork()
        # Reuses x and the interned constants already in the table.
        b.add_constraint(E.ult(x, E.const(0x1000, 32)))
        _roundtrip(sender, receiver, b)
        assert sender.stats.expr_nodes_sent == sent_after_first
        assert sender.stats.expr_nodes_reused >= 1

    def test_delta_beats_full_pickle_on_fork_chain(self):
        """The codec's reason to exist: ≥ 4x fewer bytes per shipped
        state than full pickles on a forking workload."""
        sender, receiver = StateWire(), StateWire()
        chain = _fork_chain(40)
        full_bytes = sum(
            len(pickle.dumps(s, protocol=pickle.HIGHEST_PROTOCOL))
            for s in chain)
        for state in chain:
            _roundtrip(sender, receiver, state)
        assert sender.stats.state_bytes_delta * 4 <= full_bytes


class TestRegistryLifecycle:
    def test_eviction_notice_forces_reship(self):
        sender = StateWire(pool_cap=2)
        receiver = StateWire(pool_cap=2)
        root = _root_state()
        _roundtrip(sender, receiver, root)
        # The receiver's tiny pool evicted early pages on admit; its
        # notices must flow back and clear the sender's known-set.
        notices = receiver.take_evictions("c")
        assert notices and receiver.stats.page_evictions > 0
        sender.forget_remote("w", notices)
        known = sender.peers["w"].known_pages
        assert not (known & set(notices))

    def test_forget_peer_clears_conversation(self):
        sender = StateWire()
        root = _root_state()
        sender.encode_state(root, "w")
        assert "w" in sender.peers
        sender.forget_peer("w")
        assert "w" not in sender.peers
        # A fresh conversation re-ships everything (self-contained).
        receiver = StateWire()
        _, back = _roundtrip(sender, receiver, root)
        assert pickle.dumps(back) == pickle.dumps(root)

    def test_unknown_page_reference_fails_loudly(self):
        sender, receiver = StateWire(), StateWire()
        root = _root_state()
        _roundtrip(sender, receiver, root)
        child = root.fork()
        child.add_constraint(E.eq(E.var("q", 8), E.const(0, 8)))
        kind, record, bodies = sender.encode_state(child, "w")
        assert not bodies  # pages all by reference now
        cold = StateWire()  # never saw the first ship
        with pytest.raises(SnapshotIntegrityError):
            cold.decode_state(kind, record, bodies, "c")

    def test_base_checksum_divergence_fails_loudly(self):
        sender, receiver = StateWire(), StateWire()
        root = _root_state()
        _roundtrip(sender, receiver, root)
        child = root.fork()
        child.add_constraint(E.eq(E.var("q", 8), E.const(0, 8)))
        kind, record, bodies = sender.encode_state(child, "w")
        # Corrupt the receiver's registry entry for the ancestor.
        receiver.peers["c"].bases[root.lineage] = [
            E.eq(E.var("other", 8), E.const(3, 8))]
        with pytest.raises(SnapshotIntegrityError):
            receiver.decode_state(kind, record, bodies, "c")

    def test_stats_merge_and_dict(self):
        a = StateWireStats(states_sent=2, state_bytes_delta=100,
                           delta_states=2)
        a.merge(StateWireStats(states_sent=1, state_bytes_full=400,
                               full_states=1))
        assert a.states_sent == 3
        d = a.as_dict()
        assert d["state_bytes_full"] == 400
        assert d["delta_ratio"] == 8.0  # 400/1 vs 100/2


class TestParallelIntegration:
    def _serial(self):
        return HardSnapSession(FIRMWARE, TIMER, searcher="bfs").run(
            max_instructions=100_000).verdict_summary()

    def test_parallel_delta_matches_serial_and_saves_bytes(self):
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    searcher="bfs") as engine:
            report = engine.run(max_instructions=100_000)
            stats = engine.pool_stats
        assert report.verdict_summary() == self._serial()
        sw = stats.state_wire
        assert sw.delta_states > 0
        assert sw.full_states == 0
        assert sw.state_bytes_delta > 0
        assert sw.pages_referenced > 0

    def test_parallel_full_pickle_baseline_matches_serial(self):
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    searcher="bfs",
                                    delta_state=False) as engine:
            report = engine.run(max_instructions=100_000)
            stats = engine.pool_stats
        assert report.verdict_summary() == self._serial()
        sw = stats.state_wire
        assert sw.full_states > 0
        assert sw.delta_states == 0
        assert sw.state_bytes_full > 0

    def test_respawn_falls_back_to_full_pickles(self):
        """Chaos: kill a worker mid-run. The replacement's registries
        are cold, so re-addressed leases ship as full pickles — and the
        verdicts stay byte-identical to serial."""
        plan = FaultPlan.parse("seed=7,kill=1@0")
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    searcher="bfs",
                                    fault_plan=plan) as engine:
            report = engine.run(max_instructions=100_000)
            stats = engine.pool_stats
        assert report.verdict_summary() == self._serial()
        assert report.resilience.worker_respawns == 1
        sw = stats.state_wire
        assert sw.delta_states > 0  # normal traffic stayed delta
        assert sw.full_states > 0   # the recovery re-pack went full
