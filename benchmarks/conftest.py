"""Shared helpers for the benchmark/experiment harness.

Every module regenerates one table or figure of the paper (see the
experiment index in DESIGN.md). Each experiment:

* runs the real code paths (never canned numbers),
* prints a paper-style table (visible with ``pytest -s``) and writes it
  to ``benchmarks/out/<experiment>.txt``,
* asserts the *shape* the paper reports (who wins, how things scale),
* wraps a representative kernel in pytest-benchmark for host-time data.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.persistence import atomic_write_json, atomic_write_text
from repro.firmware import TIMER_BASE
from repro.peripherals import catalog
from repro.targets import FpgaTarget, SimulatorTarget

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Base address used when hosting a single corpus peripheral.
PERIPH_BASE = 0x4000_0000


def emit(experiment: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    atomic_write_text(OUT_DIR / f"{experiment}.txt", text + "\n")


def emit_json(name: str, payload: dict) -> None:
    """Persist a BENCH_*.json machine artifact atomically — CI gates
    read these back, so a crashed run must never leave a torn file."""
    OUT_DIR.mkdir(exist_ok=True)
    atomic_write_json(OUT_DIR / name, payload, indent=2, sort_keys=True)


def fpga_with(spec, scan_mode="functional", **kw) -> FpgaTarget:
    target = FpgaTarget(scan_mode=scan_mode, **kw)
    target.add_peripheral(spec, PERIPH_BASE)
    target.reset()
    return target


def simulator_with(spec, **kw) -> SimulatorTarget:
    target = SimulatorTarget(**kw)
    target.add_peripheral(spec, PERIPH_BASE)
    target.reset()
    return target


@pytest.fixture(scope="session")
def corpus():
    return list(catalog.CORPUS)
