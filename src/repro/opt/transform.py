"""The semantics-preserving ``optimize(design) -> design`` pre-pass.

Pipeline (on a deep copy; the input design is never mutated):

1. forward constant propagation (:func:`repro.opt.dataflow.constant_map`),
2. a flow-sensitive folding walk per process — expressions provably
   constant *at that program point* become literals, constant guards
   select their branch statically, impossible case items are pruned,
3. backward bit-liveness with snapshot sinks — statements writing no
   live bit, then empty processes, unreferenced nets and unread
   non-state memories are removed,
4. single-use wire fusion (:func:`repro.opt.cones.inline_single_use_wires`).

Invariants the passes must uphold (the differential gate enforces them):

* ``state_nets`` / ``state_memories`` are carried over verbatim —
  snapshots of the optimized design are byte-compatible,
* inputs, outputs, every sequential clock/async-reset net and the
  clock-alias glue blocks survive untouched,
* case items are only pruned when the statement has a default (or the
  whole case resolves), so definite-assignment analysis — and with it
  latch inference — is unchanged.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.hdl import ir
from repro.opt.dataflow import (_AbstractExec, _join_dicts, _labels_match,
                                constant_map)
from repro.opt.cones import inline_single_use_wires
from repro.opt.lattice import BitsVal, eval_expr
from repro.opt.liveness import live_masks
from repro.sim.scheduler import clock_domain


@dataclass
class OptReport:
    """What the optimizer did — surfaced by ``repro run/fuzz``."""

    consts_folded: int = 0
    stmts_removed: int = 0
    blocks_removed: int = 0
    case_items_pruned: int = 0
    nets_removed: int = 0
    memories_removed: int = 0
    inlined_wires: List[str] = field(default_factory=list)
    removed_nets: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (self.consts_folded + self.stmts_removed + self.blocks_removed
                + self.case_items_pruned + self.nets_removed
                + self.memories_removed + len(self.inlined_wires))

    def summary(self) -> str:
        return (f"folded {self.consts_folded} constants, "
                f"removed {self.stmts_removed} statements / "
                f"{self.blocks_removed} blocks / {self.nets_removed} nets / "
                f"{self.memories_removed} memories, "
                f"pruned {self.case_items_pruned} case items, "
                f"fused {len(self.inlined_wires)} wires")


@dataclass
class OptResult:
    design: ir.Design
    report: OptReport


# ---------------------------------------------------------------------------
# Folding walk
# ---------------------------------------------------------------------------

class _FoldExec(_AbstractExec):
    """Abstract executor that rewrites statements while tracking the
    flow-sensitive lattice state (so blocking-write intermediates fold
    with their *current* value, not the net's global invariant)."""

    def __init__(self, env: Dict[str, BitsVal], pinned: set,
                 report: OptReport):
        super().__init__(env, pinned)
        self.report = report

    def fold_stmts(self, stmts: List[ir.Stmt],
                   updates: Dict[str, BitsVal]) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ir.SAssign):
                stmt.value = self._fold_expr(stmt.value)
                for lv in ir._leaf_lvalues(stmt.target):
                    if isinstance(lv, (ir.LNetDyn, ir.LMem)):
                        lv.index = self._fold_expr(lv.index)
                value = eval_expr(stmt.value, self.lookup)
                self._write(stmt.target, value, updates,
                            blocking=stmt.blocking)
                out.append(stmt)
            elif isinstance(stmt, ir.SIf):
                stmt.cond = self._fold_expr(stmt.cond)
                cond = eval_expr(stmt.cond, self.lookup)
                if cond.known_nonzero:
                    self.report.stmts_removed += _count_stmts(stmt.other) + 1
                    out.extend(self.fold_stmts(stmt.then, updates))
                elif cond.known_zero:
                    self.report.stmts_removed += _count_stmts(stmt.then) + 1
                    out.extend(self.fold_stmts(stmt.other, updates))
                else:
                    self._fold_branches(stmt, updates)
                    out.append(stmt)
            elif isinstance(stmt, ir.SCase):
                out.extend(self._fold_case(stmt, updates))
            else:
                out.append(stmt)
        return out

    def _fold_branches(self, stmt: ir.SIf,
                       updates: Dict[str, BitsVal]) -> None:
        base_overlay = dict(self.overlay)
        base_updates = dict(updates)
        stmt.then = self.fold_stmts(stmt.then, updates)
        then_state = (self.overlay, dict(updates))
        self.overlay = dict(base_overlay)
        updates.clear()
        updates.update(base_updates)
        stmt.other = self.fold_stmts(stmt.other, updates)
        self._merge_two(base_overlay, base_updates, then_state, updates)

    def _merge_two(self, base_overlay, base_updates, then_state,
                   updates: Dict[str, BitsVal]) -> None:
        fallback = self.env.__getitem__
        self.overlay = _join_dicts([then_state[0], self.overlay],
                                   base_overlay, fallback)
        merged = _join_dicts([then_state[1], dict(updates)],
                             base_updates, fallback)
        updates.clear()
        updates.update(merged)

    def _fold_case(self, stmt: ir.SCase,
                   updates: Dict[str, BitsVal]) -> List[ir.Stmt]:
        stmt.subject = self._fold_expr(stmt.subject)
        subject = eval_expr(stmt.subject, self.lookup)
        can_prune = bool(stmt.default)
        kept: List[ir.SCaseItem] = []
        for pos, item in enumerate(stmt.items):
            definite, possible = _labels_match(subject, item.labels)
            if definite and not kept:
                # First reachable item always wins: the case collapses.
                self.report.case_items_pruned += len(stmt.items) - 1
                self.report.stmts_removed += _count_stmts(stmt.default) + 1
                return self.fold_stmts(item.body, updates)
            if not possible and can_prune:
                self.report.case_items_pruned += 1
                self.report.stmts_removed += _count_stmts(item.body)
                continue
            kept.append(item)
            if definite and can_prune:
                # Later items and the default are unreachable.
                tail = stmt.items[pos + 1:]
                self.report.case_items_pruned += len(tail)
                for dropped in tail:
                    self.report.stmts_removed += _count_stmts(dropped.body)
                self.report.stmts_removed += _count_stmts(stmt.default)
                stmt.default = []
                break
        stmt.items = kept

        # Abstract execution over the surviving alternatives.
        bodies = [item.body for item in kept]
        bodies.append(stmt.default)
        base_overlay = dict(self.overlay)
        base_updates = dict(updates)
        states = []
        for i, body in enumerate(bodies):
            self.overlay = dict(base_overlay)
            branch_updates = dict(base_updates)
            new_body = self.fold_stmts(body, branch_updates)
            if i < len(kept):
                kept[i].body = new_body
            else:
                stmt.default = new_body
            states.append((self.overlay, branch_updates))
        fallback = self.env.__getitem__
        self.overlay = _join_dicts([s[0] for s in states],
                                   base_overlay, fallback)
        merged = _join_dicts([s[1] for s in states],
                             base_updates, fallback)
        updates.clear()
        updates.update(merged)
        return [stmt]

    # -- expressions -------------------------------------------------------

    def _fold_expr(self, expr: ir.Expr) -> ir.Expr:
        if isinstance(expr, ir.Const):
            return expr
        expr = self._fold_children(expr)
        bits = eval_expr(expr, self.lookup)
        if bits.is_const:
            self.report.consts_folded += 1
            return ir.const(bits.value, expr.width)
        simplified = self._identity(expr)
        if simplified is not expr:
            self.report.consts_folded += 1
        return simplified

    def _fold_children(self, expr: ir.Expr) -> ir.Expr:
        if isinstance(expr, ir.Unary):
            expr.operand = self._fold_expr(expr.operand)
        elif isinstance(expr, ir.Binary):
            expr.left = self._fold_expr(expr.left)
            expr.right = self._fold_expr(expr.right)
        elif isinstance(expr, ir.Ternary):
            expr.cond = self._fold_expr(expr.cond)
            expr.then = self._fold_expr(expr.then)
            expr.other = self._fold_expr(expr.other)
        elif isinstance(expr, ir.Concat):
            expr.parts = [self._fold_expr(p) for p in expr.parts]
        elif isinstance(expr, ir.Slice):
            expr.value = self._fold_expr(expr.value)
        elif isinstance(expr, ir.DynBit):
            expr.value = self._fold_expr(expr.value)
            expr.index = self._fold_expr(expr.index)
        elif isinstance(expr, ir.MemRead):
            expr.index = self._fold_expr(expr.index)
        return expr

    def _identity(self, expr: ir.Expr) -> ir.Expr:
        """Width-preserving algebraic identities on folded children."""
        if isinstance(expr, ir.Ternary):
            cond = eval_expr(expr.cond, self.lookup)
            if cond.known_nonzero and expr.then.width == expr.width:
                return expr.then
            if cond.known_zero and expr.other.width == expr.width:
                return expr.other
            return expr
        if not isinstance(expr, ir.Binary):
            return expr
        op, left, right = expr.op, expr.left, expr.right
        full = (1 << expr.width) - 1

        def is_const(e: ir.Expr, value: int) -> bool:
            return isinstance(e, ir.Const) and e.value == value

        if op in ("|", "^", "+"):
            if is_const(right, 0) and left.width == expr.width:
                return left
            if is_const(left, 0) and right.width == expr.width:
                return right
        elif op == "-" and is_const(right, 0) and left.width == expr.width:
            return left
        elif op == "&":
            if is_const(right, full) and left.width == expr.width:
                return left
            if is_const(left, full) and right.width == expr.width:
                return right
        elif op == "*":
            if is_const(right, 1) and left.width == expr.width:
                return left
            if is_const(left, 1) and right.width == expr.width:
                return right
        elif op in ("<<", ">>", ">>>"):
            if is_const(right, 0) and left.width == expr.width:
                return left
        return expr


def _count_stmts(stmts: List[ir.Stmt]) -> int:
    return sum(1 for _ in ir._walk_stmts(stmts))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def _protected_nets(design: ir.Design, clock: str) -> Set[str]:
    names: Set[str] = set()
    names.update(net.name for net in design.inputs)
    names.update(net.name for net in design.outputs)
    names.update(net.name for net in design.state_nets)
    clocks = {clock}
    clocks.update(block.clock.name for block in design.seq_blocks)
    for name in clocks:
        if name in design.nets:
            names.update(clock_domain(design, name))
    for block in design.seq_blocks:
        if block.areset is not None:
            names.add(block.areset.name)
    return names


def _glue_blocks(design: ir.Design, protected: Set[str]) -> Set[int]:
    """Clock-alias identity assignments that scheduling relies on."""
    glue: Set[int] = set()
    for block in design.comb_blocks:
        if (len(block.stmts) == 1
                and isinstance(block.stmts[0], ir.SAssign)
                and isinstance(block.stmts[0].target, ir.LNet)
                and block.stmts[0].target.hi is None
                and isinstance(block.stmts[0].value, ir.Ref)
                and block.stmts[0].target.net.name in protected):
            glue.add(id(block))
    return glue


def _mentioned_names(design: ir.Design) -> Set[str]:
    names: Set[str] = set()
    for block in design.comb_blocks:
        reads, writes = ir.stmt_reads_writes(block.stmts)
        names.update(reads)
        names.update(writes)
    for block in design.seq_blocks:
        reads, writes = ir.stmt_reads_writes(block.stmts)
        names.update(reads)
        names.update(writes)
        names.add(block.clock.name)
        if block.areset is not None:
            names.add(block.areset.name)
    for block in design.init_blocks:
        reads, writes = ir.stmt_reads_writes(block.stmts)
        names.update(reads)
        names.update(writes)
    return names


def run_opt(design: ir.Design, clock: str = "clk") -> OptResult:
    """Optimize a copy of *design*; the original is left untouched."""
    report = OptReport()
    design = copy.deepcopy(design)
    protected = _protected_nets(design, clock)
    glue = _glue_blocks(design, protected)

    # 1+2 — constant propagation, then the flow-sensitive folding walk.
    env = constant_map(design)
    pinned = {net.name for net in design.inputs}
    for block in design.init_blocks:
        ex = _FoldExec(env, pinned, report)
        block.stmts = ex.fold_stmts(block.stmts, {})
    for block in design.comb_blocks:
        if id(block) in glue:
            continue
        ex = _FoldExec(env, pinned, report)
        block.stmts = ex.fold_stmts(block.stmts, {})
        reads, writes = ir.stmt_reads_writes(block.stmts)
        block.reads = frozenset(reads)
        block.writes = frozenset(writes)
    for block in design.seq_blocks:
        ex = _FoldExec(env, pinned, report)
        block.stmts = ex.fold_stmts(block.stmts, {})

    # 3 — liveness with snapshot sinks; drop dead statements/processes.
    live = live_masks(design, include_state_sinks=True,
                      extra_live=protected)

    def filter_stmts(stmts: List[ir.Stmt]) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, ir.SIf):
                stmt.then = filter_stmts(stmt.then)
                stmt.other = filter_stmts(stmt.other)
                if stmt.then or stmt.other:
                    out.append(stmt)
                else:
                    report.stmts_removed += 1
            elif isinstance(stmt, ir.SCase):
                for item in stmt.items:
                    item.body = filter_stmts(item.body)
                stmt.default = filter_stmts(stmt.default)
                if any(item.body for item in stmt.items) or stmt.default:
                    out.append(stmt)
                else:
                    report.stmts_removed += 1
            elif live.is_live_stmt(stmt):
                out.append(stmt)
            else:
                report.stmts_removed += 1
        return out

    for block in design.comb_blocks:
        if id(block) in glue:
            continue
        block.stmts = filter_stmts(block.stmts)
    for block in design.seq_blocks:
        block.stmts = filter_stmts(block.stmts)
    for block in design.init_blocks:
        block.stmts = filter_stmts(block.stmts)

    removed_comb = [b for b in design.comb_blocks
                    if not b.stmts and id(b) not in glue]
    design.comb_blocks = [b for b in design.comb_blocks
                          if b.stmts or id(b) in glue]
    removed_seq = [b for b in design.seq_blocks if not b.stmts]
    design.seq_blocks = [b for b in design.seq_blocks if b.stmts]
    design.init_blocks = [b for b in design.init_blocks if b.stmts]
    report.blocks_removed += len(removed_comb) + len(removed_seq)

    for block in design.comb_blocks:
        reads, writes = ir.stmt_reads_writes(block.stmts)
        block.reads = frozenset(reads)
        block.writes = frozenset(writes)

    # Nets no process mentions any more (and nothing external observes).
    mentioned = _mentioned_names(design) | protected
    for name in sorted(set(design.nets) - mentioned):
        del design.nets[name]
        report.nets_removed += 1
        report.removed_nets.append(name)
    state_mem_names = {m.name for m in design.state_memories}
    for name in sorted(set(design.memories)
                       - mentioned - state_mem_names):
        del design.memories[name]
        report.memories_removed += 1

    # 4 — fuse single-use wires into their consumers.
    report.inlined_wires = inline_single_use_wires(design, protected)
    mentioned = _mentioned_names(design) | protected
    for name in sorted(set(design.nets) - mentioned):
        del design.nets[name]
        report.nets_removed += 1
        report.removed_nets.append(name)

    return OptResult(design, report)


def optimize(design: ir.Design, clock: str = "clk") -> ir.Design:
    """Convenience wrapper: the optimized design alone."""
    return run_opt(design, clock).design
