#!/usr/bin/env python3
"""Software-driven hardware testing, both directions:

1. a concrete Python testbench drives the SHA-256 accelerator through
   its AXI4-Lite interface and checks invariants every cycle,
2. the symbolic engine generates *test vectors* for the hardware: every
   feasible firmware path yields a concrete stimulus.

Run:  python examples/hw_testbench.py
"""

import hashlib
import struct

import _bootstrap  # noqa: F401  — src/ fallback for fresh checkouts
from repro.core.testbench import HwTestbench, generate_test_vectors
from repro.firmware import TIMER_BASE, dispatcher
from repro.peripherals import catalog, sha256
from repro.targets import SimulatorTarget

SHA_BASE = 0x4003_0000


def pad(message: bytes) -> list:
    length = len(message) * 8
    message += b"\x80"
    while len(message) % 64 != 56:
        message += b"\x00"
    message += struct.pack(">Q", length)
    return [message[i:i + 64] for i in range(0, len(message), 64)]


def concrete_bench() -> None:
    print("== concrete testbench: SHA-256 accelerator ==")
    target = SimulatorTarget()
    target.add_peripheral(catalog.SHA256, SHA_BASE)
    target.reset()
    bench = HwTestbench(target, "sha256")

    # Invariant checked on every step: the round counter never exceeds 64.
    bench.add_property(
        "round counter in range",
        lambda tb: tb.target.peek("sha256", "t") <= 64)

    message = b"The quick brown fox jumps over the lazy dog"
    bench.write("CTRL", sha256.CTRL_INIT)
    for block in pad(message):
        for i, word in enumerate(struct.unpack(">16I", block)):
            bench.write("BLOCK", word, offset=4 * i)
        bench.write("CTRL", sha256.CTRL_NEXT)
        assert bench.wait_until("STATUS", sha256.STATUS_BUSY, value=0)
    digest = b""
    for i in range(8):
        digest += struct.pack(">I", bench.read("DIGEST", offset=4 * i))
    expected = hashlib.sha256(message).digest()
    print(f"  accelerator: {digest.hex()}")
    print(f"  hashlib:     {expected.hex()}")
    print(f"  match: {digest == expected}, properties ok: {bench.ok}")
    assert digest == expected and bench.ok


def symbolic_vectors() -> None:
    print("\n== symbolic test-vector generation ==")
    vectors, report = generate_test_vectors(
        dispatcher(4, work_cycles=8),
        [(catalog.TIMER, TIMER_BASE)],
        scan_mode="functional")
    print(f"  engine explored {len(report.paths)} paths "
          f"({report.instructions} instructions)")
    for vec in vectors:
        print(f"  path {vec.path_id}: halt {hex(vec.halt_code)} "
              f"<- stimulus {vec.assignments}")
    assert len(vectors) == 4


if __name__ == "__main__":
    concrete_bench()
    symbolic_vectors()
