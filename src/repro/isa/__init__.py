"""HS32: the firmware instruction set, assembler, disassembler and
concrete reference core."""

from repro.isa import encoding
from repro.isa.assembler import Program, assemble
from repro.isa.cpu import Cpu, CpuExit
from repro.isa.disassembler import disassemble_program, disassemble_word

__all__ = ["encoding", "assemble", "Program", "Cpu", "CpuExit",
           "disassemble_word", "disassemble_program"]
