"""Tests for the top-level Solver: queries, caching, concretization."""

import pytest

from repro.errors import SolverError
from repro.solver import SAT, UNSAT, Solver
from repro.solver import expr as E


@pytest.fixture
def solver():
    return Solver()


class TestCheck:
    def test_empty_constraints_sat(self, solver):
        assert solver.check([]).is_sat

    def test_trivially_false(self, solver):
        assert solver.check([E.false()]).status == UNSAT

    def test_trivially_true_filtered(self, solver):
        assert solver.check([E.true()]).is_sat

    def test_model_satisfies_constraints(self, solver):
        x, y = E.var("sv_x", 8), E.var("sv_y", 8)
        cs = [E.eq(E.add(x, y), E.const(100, 8)), E.ugt(x, E.const(90, 8))]
        result = solver.check(cs)
        assert result.is_sat
        for c in cs:
            assert c.evaluate(result.model) == 1

    def test_unsat_range(self, solver):
        x = E.var("sv_u", 8)
        assert not solver.check([E.ult(x, E.const(4, 8)),
                                 E.ugt(x, E.const(250, 8))]).is_sat

    def test_non_boolean_constraint_rejected(self, solver):
        with pytest.raises(SolverError):
            solver.check([E.var("sv_w", 8)])

    def test_signed_constraints(self, solver):
        x = E.var("sv_s", 8)
        result = solver.check([E.slt(x, E.const(0, 8)),
                               E.sge(x, E.const(-3 & 0xFF, 8))])
        assert result.is_sat
        v = result.model[x]
        assert v in (0xFD, 0xFE, 0xFF)


class TestCaching:
    def test_query_cache_hit(self, solver):
        x = E.var("qc", 8)
        cs = [E.ult(x, E.const(5, 8))]
        solver.check(cs)
        before = solver.stats.queries
        solver.check(list(cs))
        assert solver.stats.queries == before
        assert solver.stats.query_cache_hits >= 1

    def test_model_cache_answers_weaker_query(self, solver):
        x = E.var("mc", 8)
        r1 = solver.check([E.eq(x, E.const(3, 8))])
        assert r1.is_sat
        before_hits = solver.stats.model_cache_hits
        r2 = solver.check([E.ult(x, E.const(10, 8))])
        assert r2.is_sat
        assert solver.stats.model_cache_hits == before_hits + 1

    def test_constraint_order_irrelevant_for_cache(self, solver):
        x = E.var("oc", 8)
        a, b = E.ult(x, E.const(9, 8)), E.ugt(x, E.const(2, 8))
        solver.check([a, b])
        before = solver.stats.queries
        solver.check([b, a])
        assert solver.stats.queries == before


class TestEval:
    def test_eval_one_concrete_shortcut(self, solver):
        assert solver.eval_one(E.const(7, 8), []) == 7

    def test_eval_one_respects_constraints(self, solver):
        x = E.var("e1", 8)
        got = solver.eval_one(x, [E.eq(x, E.const(0x42, 8))])
        assert got == 0x42

    def test_eval_one_unsat_returns_none(self, solver):
        x = E.var("e2", 8)
        assert solver.eval_one(x, [E.false()]) is None

    def test_eval_upto_enumerates_all(self, solver):
        x = E.var("e3", 8)
        vals = solver.eval_upto(x, [E.ult(x, E.const(4, 8))], 16)
        assert sorted(vals) == [0, 1, 2, 3]

    def test_eval_upto_respects_limit(self, solver):
        x = E.var("e4", 8)
        vals = solver.eval_upto(x, [], 5)
        assert len(vals) == 5
        assert len(set(vals)) == 5

    def test_eval_of_derived_expression(self, solver):
        x = E.var("e5", 8)
        got = solver.eval_one(E.mul(x, E.const(3, 8)),
                              [E.eq(x, E.const(5, 8))])
        assert got == 15


class TestImplication:
    def test_must_be_true(self, solver):
        x = E.var("im", 8)
        path = [E.ult(x, E.const(10, 8))]
        assert solver.must_be_true(E.ult(x, E.const(20, 8)), path)
        assert not solver.must_be_true(E.ult(x, E.const(5, 8)), path)

    def test_may_be_true(self, solver):
        x = E.var("im2", 8)
        path = [E.ult(x, E.const(10, 8))]
        assert solver.may_be_true(E.eq(x, E.const(9, 8)), path)
        assert not solver.may_be_true(E.eq(x, E.const(10, 8)), path)

    def test_branch_feasibility_pattern(self, solver):
        """The executor's both-ways query: either side or both feasible."""
        x = E.var("bf", 32)
        path = [E.ult(x, E.const(100, 32))]
        cond = E.ult(x, E.const(50, 32))
        assert solver.may_be_true(cond, path)
        assert solver.may_be_true(E.not_(cond), path)
        pinned = path + [E.eq(x, E.const(10, 32))]
        assert solver.may_be_true(cond, pinned)
        assert not solver.may_be_true(E.not_(cond), pinned)


class TestQueryCacheLru:
    """Satellite: the query cache is bounded with LRU eviction."""

    @staticmethod
    def _distinct_query(i):
        x = E.var("lru", 32)
        return [E.eq(x, E.const(i, 32))]

    def test_cache_never_exceeds_capacity(self):
        solver = Solver(query_cache_size=8)
        for i in range(40):
            solver.check(self._distinct_query(i))
            assert len(solver._query_cache) <= 8
        assert solver.stats.query_cache_evictions == 40 - 8

    def test_eviction_counter_in_stats(self):
        solver = Solver(query_cache_size=2)
        for i in range(5):
            solver.check(self._distinct_query(i))
        assert solver.stats.query_cache_evictions == 3

    def test_lru_order_recently_used_survives(self):
        solver = Solver(query_cache_size=2)
        solver.check(self._distinct_query(0))
        solver.check(self._distinct_query(1))
        solver.check(self._distinct_query(0))   # refresh 0: 1 is now LRU
        solver.check(self._distinct_query(2))   # evicts 1
        hits = solver.stats.query_cache_hits
        solver.check(self._distinct_query(0))   # still cached
        assert solver.stats.query_cache_hits == hits + 1
        solver.check(self._distinct_query(1))   # was evicted: a miss
        assert solver.stats.query_cache_hits == hits + 1

    def test_default_capacity_is_large(self):
        from repro.solver.solver import DEFAULT_QUERY_CACHE_SIZE
        assert Solver()._query_cache_size == DEFAULT_QUERY_CACHE_SIZE >= 1024

    def test_invalid_capacity_rejected(self):
        with pytest.raises(SolverError):
            Solver(query_cache_size=0)
