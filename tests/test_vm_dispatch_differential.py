"""Differential equivalence gate for the VM dispatch tiers.

The predecoded/handler-table fast path and the batched lane scheduler
are only allowed into the engine because this suite proves them
semantics-preserving (mirroring ``tests/test_opt_differential.py`` for
the netlist optimizer):

* full DSE sessions over the firmware corpus must produce byte-identical
  verdict summaries, coverage sets, bug lists, and final hardware state
  under ``dispatch="fast"`` vs ``dispatch="legacy"``;
* batched lanes (``lane_width``/``lane_steps`` > 1) must reproduce the
  serial schedule's verdicts and coverage on exhausted runs;
* the concrete ``Cpu`` predecoded fetch must agree with the byte-accurate
  slow fetch on randomized programs (registers, RAM, halt code);
* a self-modifying store must demote the fast path, not desync it.
"""

import pytest

from repro import HardSnapSession
from repro.firmware import (AES_BASE, TIMER_BASE, UART_BASE, dispatcher,
                            fig1_two_paths, vuln_buffer_overflow,
                            vuln_irq_race, vuln_peripheral_misuse)
from repro.isa import Cpu, assemble
from repro.peripherals import catalog
from repro.vm import SymbolicExecutor
from tests.test_executor_differential import _random_program

TIMER = [(catalog.TIMER, TIMER_BASE)]
UART = [(catalog.UART, UART_BASE)]
AES = [(catalog.AES128, AES_BASE)]

CORPUS = [
    ("fig1", fig1_two_paths(), TIMER),
    ("dispatcher", dispatcher(4), TIMER),
    ("buffer-overflow", vuln_buffer_overflow(), UART),
    ("peripheral-misuse", vuln_peripheral_misuse(), AES),
    ("irq-race", vuln_irq_race(), TIMER),
]


def _run_session(source, peripherals, **overrides):
    session = HardSnapSession(source, peripherals, scan_mode="functional",
                              **overrides)
    report = session.run(max_instructions=500_000)
    return session, report


def _hardware_states(session):
    return session.target.save_snapshot().states


@pytest.mark.parametrize("name,source,peripherals", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_fast_vs_legacy_full_session(name, source, peripherals):
    fast_s, fast_r = _run_session(source, peripherals, dispatch="fast")
    legacy_s, legacy_r = _run_session(source, peripherals,
                                      dispatch="legacy")
    assert fast_r.stop_reason == "exhausted"
    assert fast_r.verdict_summary() == legacy_r.verdict_summary()
    assert fast_s.executor.coverage == legacy_s.executor.coverage
    assert ([(b.kind, b.pc) for b in fast_r.bugs]
            == [(b.kind, b.pc) for b in legacy_r.bugs])
    # Identical schedule + identical semantics ⇒ the hardware must end
    # in the same architectural state, byte for byte.
    assert _hardware_states(fast_s) == _hardware_states(legacy_s)


@pytest.mark.parametrize("name,source,peripherals", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_batched_vs_serial_lanes(name, source, peripherals):
    serial_s, serial_r = _run_session(source, peripherals)
    batched_s, batched_r = _run_session(source, peripherals,
                                        lane_width=4, lane_steps=16)
    assert serial_r.stop_reason == "exhausted"
    assert batched_r.stop_reason == "exhausted"
    # Verdicts are schedule-independent for exhausted runs: every path
    # runs to completion against its own snapshots whatever the
    # interleaving.
    assert serial_r.verdict_summary() == batched_r.verdict_summary()
    assert serial_s.executor.coverage == batched_s.executor.coverage


def test_lane_settings_do_not_change_fork_tree():
    serial_s, serial_r = _run_session(fig1_two_paths(), TIMER)
    wide_s, wide_r = _run_session(fig1_two_paths(), TIMER,
                                  lane_width=8, lane_steps=64)
    assert sorted(p.lineage for p in serial_r.paths) \
        == sorted(p.lineage for p in wide_r.paths)
    assert serial_r.forks == wide_r.forks


@pytest.mark.parametrize("seed", range(12))
def test_cpu_predecoded_vs_slow_fetch(seed):
    """The concrete core's predecoded fetch vs forced byte-accurate
    fetch: identical architectural outcome on randomized programs."""
    program = assemble(_random_program(seed))
    fast = Cpu(program)
    slow = Cpu(program)
    slow._code_clean = False  # demote every fetch to the slow tier

    fast_exit = slow_exit = None
    while fast_exit is None and fast.steps < 50_000:
        fast_exit = fast.step()
    while slow_exit is None and slow.steps < 50_000:
        slow_exit = slow.step()

    assert fast_exit is not None and slow_exit is not None
    assert fast_exit.code == slow_exit.code
    assert fast.regs == slow.regs
    assert fast.pc == slow.pc
    assert fast.ram == slow.ram


@pytest.mark.parametrize("seed", range(8))
def test_executor_fast_vs_legacy_concrete(seed):
    """Dispatch tiers head-to-head on the symbolic executor itself,
    over concrete randomized programs (no hardware attached)."""
    source = _random_program(seed + 100)
    runs = {}
    for mode in ("fast", "legacy"):
        ex = SymbolicExecutor(assemble(source), bridge=None, dispatch=mode)
        state = ex.make_initial_state()
        while state.is_active and state.steps < 50_000:
            ex.step(state)
        runs[mode] = (state, ex)
    fast, legacy = runs["fast"][0], runs["legacy"][0]
    assert fast.status == legacy.status
    assert fast.halt_code == legacy.halt_code
    assert fast.regs == legacy.regs
    assert fast.steps == legacy.steps
    assert runs["fast"][1].coverage == runs["legacy"][1].coverage


def test_self_modifying_store_demotes_fast_path():
    """Writing into the code region must flip the clean flag so the
    stale predecode table is never consulted again."""
    source = """
start:
    movi r1, 0
    sw r0, 16(r1)      ; clobber the dead instruction below
    halt r0
    add r1, r1, r1     ; dead code at 0x10, inside the image extent
"""
    ex = SymbolicExecutor(assemble(source), bridge=None)
    state = ex.make_initial_state()
    assert state.memory.code_clean
    while state.is_active and state.steps < 100:
        ex.step(state)
    assert not state.memory.code_clean
    assert state.halt_code == 0
