"""Tests for snapshot diffing and the analysis helpers."""

import pytest

from repro.analysis import diff_snapshots, format_diff
from repro.firmware import TIMER_BASE
from repro.peripherals import catalog, timer
from repro.targets import FpgaTarget, HwSnapshot


def _snap(nets_a=None, mems_a=None, instance="p"):
    return HwSnapshot({instance: {"cycle": 0,
                                  "nets": nets_a or {},
                                  "memories": mems_a or {}}})


class TestDiffStructural:
    def test_identical_snapshots_empty(self):
        a = _snap({"x": 1}, {"m": [0, 1]})
        b = _snap({"x": 1}, {"m": [0, 1]})
        diff = diff_snapshots(a, b)
        assert diff.is_empty
        assert format_diff(diff) == "snapshots are identical"

    def test_net_change_reported(self):
        diff = diff_snapshots(_snap({"x": 1, "y": 2}), _snap({"x": 1, "y": 5}))
        assert len(diff.nets) == 1
        delta = diff.nets[0]
        assert (delta.net, delta.before, delta.after) == ("y", 2, 5)

    def test_memory_word_change_reported(self):
        diff = diff_snapshots(_snap(mems_a={"m": [0, 7, 0]}),
                              _snap(mems_a={"m": [0, 9, 0]}))
        assert len(diff.memories) == 1
        delta = diff.memories[0]
        assert (delta.word, delta.before, delta.after) == (1, 7, 9)

    def test_missing_elements_default_zero(self):
        diff = diff_snapshots(_snap({"x": 3}), _snap({}))
        assert diff.nets[0].after == 0

    def test_instance_mismatch_listed(self):
        diff = diff_snapshots(_snap({"x": 1}, instance="a"),
                              _snap({"x": 1}, instance="b"))
        assert diff.only_before == ["a"]
        assert diff.only_after == ["b"]
        assert "only in the first" in format_diff(diff)

    def test_format_truncates(self):
        a = _snap({f"n{i}": 0 for i in range(60)})
        b = _snap({f"n{i}": 1 for i in range(60)})
        text = format_diff(diff_snapshots(a, b), limit=10)
        assert "more" in text


class TestDiffOnRealTarget:
    def test_good_vs_bad_hardware_state(self):
        """The root-cause workflow: snapshot before and after an event,
        diff shows exactly the peripheral registers that moved."""
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        target.write(TIMER_BASE + timer.REGISTERS["LOAD"], 9)
        before = target.save_snapshot()
        target.write(TIMER_BASE + timer.REGISTERS["CTRL"], timer.CTRL_EN)
        target.step(12)  # expire
        after = target.save_snapshot()
        diff = diff_snapshots(before, after)
        changed = {d.net for d in diff.nets}
        assert "expired" in changed
        assert "value" in changed      # counted down to zero
        assert "load" not in changed   # untouched register stays quiet
        # one-shot: EN self-cleared back to its pre-write value, so ctrl
        # legitimately does NOT appear — the diff is truthful, not noisy
        assert "ctrl" not in changed
        text = format_diff(diff)
        assert "timer.expired: 0x0 -> 0x1" in text
