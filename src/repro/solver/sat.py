"""A CDCL SAT solver.

This is the decision core underneath the bitvector solver: clauses arrive
from the Tseitin encoder in :mod:`repro.solver.bitblast`. The implementation
follows the MiniSat lineage:

* two-watched-literal propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style exponential variable activities with decay,
* phase saving,
* Luby-sequence restarts,
* incremental solving under assumptions (used by the BV solver to reuse
  one encoding across many branch-feasibility queries).

Literal encoding: variable ``v`` (1-based) has positive literal ``2*v`` and
negative literal ``2*v + 1``; ``lit ^ 1`` negates. This keeps watch lists in
flat Python lists indexed by literal.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

SAT = "sat"
UNSAT = "unsat"


def lit(variable: int, positive: bool = True) -> int:
    """Build a literal for a 1-based variable index."""
    return variable * 2 + (0 if positive else 1)


def lit_var(literal: int) -> int:
    return literal >> 1


def lit_sign(literal: int) -> bool:
    """True when the literal is positive."""
    return literal & 1 == 0


def _luby(x: int) -> int:
    """The x-th element (0-based) of the Luby restart sequence.

    Iterative formulation from MiniSat: find the finite subsequence that
    contains index ``x`` and the position of ``x`` within it.
    """
    size = 1
    seq = 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x = x % size
    return 1 << seq


class SatSolver:
    """CDCL solver over clauses of integer literals."""

    def __init__(self, restart_base: int = 100, activity_decay: float = 0.95):
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        # assigns[v]: None unassigned, True/False otherwise.
        self.assigns: List[Optional[bool]] = [None]
        self.level: List[int] = [0]
        self.reason: List[Optional[List[int]]] = [None]
        self.activity: List[float] = [0.0]
        self.phase: List[bool] = [False]
        self.watches: Dict[int, List[List[int]]] = {}
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.prop_head = 0
        self.var_inc = 1.0
        self.activity_decay = activity_decay
        self.restart_base = restart_base
        self.ok = True
        # statistics
        self.stats = {"decisions": 0, "propagations": 0, "conflicts": 0,
                      "learned": 0, "restarts": 0}

    # -- variable / clause management --------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable, returning its 1-based index."""
        self.num_vars += 1
        v = self.num_vars
        self.assigns.append(None)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.phase.append(False)
        self.watches[lit(v, True)] = []
        self.watches[lit(v, False)] = []
        return v

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT.

        Must be called at decision level 0.
        """
        assert not self.trail_lim, "add_clause only at level 0"
        seen = set()
        clause: List[int] = []
        for l in literals:
            if l ^ 1 in seen:
                return True  # tautology
            if l in seen:
                continue
            value = self._lit_value(l)
            if value is True:
                return True  # already satisfied at level 0
            if value is False:
                continue  # falsified at level 0: drop the literal
            seen.add(l)
            clause.append(l)
        if not clause:
            self.ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        self.clauses.append(clause)
        self._watch_clause(clause)
        return True

    def _watch_clause(self, clause: List[int]) -> None:
        self.watches[clause[0] ^ 1].append(clause)
        self.watches[clause[1] ^ 1].append(clause)

    # -- assignment helpers --------------------------------------------------

    def _lit_value(self, literal: int) -> Optional[bool]:
        v = self.assigns[lit_var(literal)]
        if v is None:
            return None
        return v if lit_sign(literal) else not v

    def _enqueue(self, literal: int, reason: Optional[List[int]]) -> bool:
        value = self._lit_value(literal)
        if value is not None:
            return value
        v = lit_var(literal)
        self.assigns[v] = lit_sign(literal)
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(literal)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation ---------------------------------------------------------

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.prop_head < len(self.trail):
            p = self.trail[self.prop_head]
            self.prop_head += 1
            watchers = self.watches[p]
            self.watches[p] = []
            i = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                # Normalise: ensure the falsified watch is clause[1].
                false_lit = p ^ 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    self.watches[p].append(clause)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1] ^ 1].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                self.watches[p].append(clause)
                self.stats["propagations"] += 1
                if not self._enqueue(first, clause):
                    # Conflict: restore remaining watchers before returning.
                    self.watches[p].extend(watchers[i:])
                    return clause
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(1, self.num_vars + 1):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: List[int]) -> tuple[List[int], int]:
        """First-UIP analysis. Returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self.trail) - 1
        clause: Optional[List[int]] = conflict
        current_level = self._decision_level()
        while True:
            assert clause is not None
            start = 0 if p is None else 1
            for q in clause[start:]:
                v = lit_var(q)
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self.level[v] == current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Find the next literal on the trail to resolve on.
            while not seen[lit_var(self.trail[index])]:
                index -= 1
            p = self.trail[index]
            v = lit_var(p)
            clause = self.reason[v]
            seen[v] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            # The resolved clause has p as clause[0]; skip it via start=1.
            if clause is not None and clause[0] != p:
                clause = [p] + [l for l in clause if l != p]
        learned[0] = p ^ 1  # type: ignore[operator]
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the learned clause.
        max_i = 1
        for i in range(2, len(learned)):
            if self.level[lit_var(learned[i])] > self.level[lit_var(learned[max_i])]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self.level[lit_var(learned[1])]

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        bound = self.trail_lim[target_level]
        for i in range(len(self.trail) - 1, bound - 1, -1):
            literal = self.trail[i]
            v = lit_var(literal)
            self.phase[v] = self.assigns[v]  # type: ignore[assignment]
            self.assigns[v] = None
            self.reason[v] = None
        del self.trail[bound:]
        del self.trail_lim[target_level:]
        self.prop_head = len(self.trail)

    def _pick_branch_var(self) -> Optional[int]:
        best = None
        best_act = -1.0
        for v in range(1, self.num_vars + 1):
            if self.assigns[v] is None and self.activity[v] > best_act:
                best = v
                best_act = self.activity[v]
        return best

    # -- main search -------------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = ()) -> str:
        """Solve under *assumptions* (a sequence of literals).

        Returns :data:`SAT` or :data:`UNSAT`. On SAT, :meth:`model_value`
        reads the model. The solver state is reset to level 0 afterwards so
        it can be reused incrementally.
        """
        if not self.ok:
            return UNSAT
        assumptions = list(assumptions)
        result = self._search(assumptions)
        self._cancel_until(0)
        return result

    def _search(self, assumptions: List[int]) -> str:
        conflicts_until_restart = self.restart_base * _luby(0)
        restart_count = 1
        conflict_count = 0
        self._model: List[Optional[bool]] = []
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                conflict_count += 1
                if self._decision_level() == 0:
                    self.ok = False
                    return UNSAT
                learned, back_level = self._analyze(conflict)
                self._cancel_until(back_level)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        return UNSAT
                else:
                    self.clauses.append(learned)
                    self._watch_clause(learned)
                    self.stats["learned"] += 1
                    self._enqueue(learned[0], learned)
                self.var_inc /= self.activity_decay
                if conflict_count >= conflicts_until_restart:
                    self.stats["restarts"] += 1
                    restart_count += 1
                    conflicts_until_restart = self.restart_base * _luby(restart_count)
                    conflict_count = 0
                    self._cancel_until(self._assumption_floor(assumptions))
                continue
            # Place pending assumptions as decisions.
            placed_all, failed = self._place_assumptions(assumptions)
            if failed:
                return UNSAT
            if not placed_all:
                continue
            v = self._pick_branch_var()
            if v is None:
                self._model = list(self.assigns)
                return SAT
            self.stats["decisions"] += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit(v, self.phase[v]), None)

    def _assumption_floor(self, assumptions: List[int]) -> int:
        """Lowest decision level that still has all placed assumptions."""
        return min(self._decision_level(), len(assumptions))

    def _place_assumptions(self, assumptions: List[int]) -> tuple[bool, bool]:
        """Ensure the next unplaced assumption becomes a decision.

        Returns (all_placed, conflict_with_assumption).
        """
        while self._decision_level() < len(assumptions):
            a = assumptions[self._decision_level()]
            value = self._lit_value(a)
            if value is True:
                # Already implied: open an empty decision level so the
                # level-to-assumption indexing stays aligned.
                self.trail_lim.append(len(self.trail))
                continue
            if value is False:
                return False, True
            self.trail_lim.append(len(self.trail))
            self._enqueue(a, None)
            return False, False  # propagate before placing more
        return True, False

    # -- model access ----------------------------------------------------------

    def model_value(self, variable: int) -> bool:
        """Value of *variable* in the last SAT model (False if unassigned)."""
        value = self._model[variable] if variable < len(self._model) else None
        return bool(value)
