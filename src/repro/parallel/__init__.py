"""repro.parallel — sharded exploration over a snapshot-fed worker pool.

HardSnap's core claim is that hardware snapshotting makes *concurrent*
path exploration possible at all: once a path's complete hardware state
is a serializable artefact, any idle target instance can continue any
path. This package is that runtime:

* :class:`WorkerPool` — N processes, each owning its own simulator/FPGA
  target, solver and snapshot store, built from a picklable
  :class:`SessionRecipe` (targets are reconstructed from peripheral
  catalog names, never shipped live),
* states move between processes as content-addressed delta snapshots
  (:class:`~repro.core.persistence.SnapshotWire`): a peer only receives
  the chunks it doesn't already hold — the cross-process analogue of
  :class:`~repro.targets.orchestrator.TransferRecord`'s ``delta_bits``,
* the *software* half of a state travels the same way: the
  :class:`StateWire` codec (:mod:`repro.parallel.statewire`) ships
  dirty memory pages + constraint suffixes against per-peer
  registries instead of full pickles,
* :class:`ParallelAnalysisEngine` — the coordinator runs the searcher
  and leases pending states to workers; merged reports reproduce the
  serial engine's ``verdict_summary()`` byte-identically,
* :class:`ParallelFuzzer` — input-sharded fuzzing from a shared
  post-boot snapshot; merged coverage/crashes reproduce the serial
  fuzzer's ``verdict_summary()`` for the same batch size,
* bulk bytes move through a pluggable :class:`Transport`
  (:mod:`repro.parallel.transport`): packed batch envelopes
  (:mod:`repro.parallel.envelope`) whose bodies land in shared-memory
  slabs (:class:`~repro.parallel.shm.ChunkArena`) when the host supports
  them, with a plain-queue fallback that preserves verdicts exactly.

See ``docs/PARALLEL.md`` for the architecture and determinism rules.
"""

from repro.parallel.engine import ParallelAnalysisEngine
from repro.parallel.fuzzer import ParallelFuzzer
from repro.parallel.pool import (InlinePool, PoolStats, PoolTimeout,
                                 WorkerDeath, WorkerError, WorkerPool)
from repro.parallel.recipe import SessionRecipe, TargetRecipe
from repro.parallel.statewire import StateWire, StateWireStats
from repro.parallel.shm import (ArenaReader, ArenaStats, ChunkArena, ShmRef,
                                ShmSegmentGone, ShmUnavailable,
                                shm_available, unlink_stale)
from repro.parallel.transport import (IpcStats, QueueTransport, ShmTransport,
                                      Transport, make_transport)
from repro.parallel.wire import ChunkChannel, WireStats

__all__ = [
    "ParallelAnalysisEngine", "ParallelFuzzer", "WorkerPool", "InlinePool",
    "PoolStats", "WorkerError", "WorkerDeath", "PoolTimeout",
    "SessionRecipe", "TargetRecipe", "ChunkChannel", "WireStats",
    "StateWire", "StateWireStats",
    "ChunkArena", "ArenaReader", "ArenaStats", "ShmRef",
    "ShmUnavailable", "ShmSegmentGone", "shm_available", "unlink_stale",
    "Transport", "QueueTransport", "ShmTransport", "make_transport",
    "IpcStats",
]
