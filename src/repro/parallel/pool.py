"""The worker pool: process lifecycle and job plumbing.

One process per worker, each with a private job queue (so the
coordinator chooses *which* worker runs *which* lease — required for
chunk-channel bookkeeping, since delta encoding is per-peer) and one
shared result queue. Fork start method is preferred (workers inherit the
imported modules); spawn works too because every job payload and the
recipe are plain picklable data.

Bulk payloads travel through a pluggable :class:`Transport`
(:mod:`repro.parallel.transport`): with the default shm transport,
packed batch envelopes and snapshot chunk bodies move through
shared-memory slabs and the queues carry fixed-size references; the
queue transport keeps everything inline (automatic fallback when the
host has no shared memory). Batch job kinds (``lease-batch`` /
``fuzz-batch``) keep their *structured* payload in
:class:`InFlightJob` next to a ``pack`` callable — packed bytes exist
only on the queue, so the recovery ladder re-addresses and re-packs
payloads exactly as it re-encoded dicts before.

Every job carries a coordinator-assigned **job id**; the pool tracks
jobs in flight, so:

* :meth:`WorkerPool.next_result` polls worker liveness while waiting —
  a dead worker raises a structured :class:`WorkerDeath` naming the
  worker and its in-flight jobs instead of blocking forever,
* duplicate result deliveries (fault-injected, or a re-issue racing its
  original) are discarded exactly once — *before* any shared-memory
  fetch, so duplicates can never double-credit slab acks,
* a crashed worker can be :meth:`respawned <WorkerPool.respawn>` and its
  in-flight jobs :meth:`resubmitted <WorkerPool.resubmit>` — respawn
  also clears the dead incarnation's chunk-channel ``known`` entry and
  unlinks its orphaned shm segments, and
* when the respawn cap is exhausted, :class:`InlinePool` offers the same
  surface executed in-process (graceful degradation to serial).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import queue as queue_mod
import secrets
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import VmError
from repro.parallel.recipe import SessionRecipe
from repro.parallel.shm import ShmSegmentGone, unlink_stale
from repro.parallel.statewire import StateWireStats
from repro.parallel.transport import IpcStats, Transport, make_transport
from repro.parallel.wire import ChunkChannel, WireStats
from repro.parallel.workers import _HARNESS_TYPES, STOP, _worker_main
from repro.resilience import ResilienceStats

#: Job kinds whose payloads/results are packed envelopes (bytes on the
#: queue, possibly shm references); everything else stays a plain
#: pickled object for compatibility and control traffic.
_BATCH_KINDS = ("lease-batch", "fuzz-batch")

#: Every live WorkerPool, so signal handlers and interpreter exit can
#: run the escalating close (child reaping + shm unlink) even when the
#: owning coordinator never got the chance — the leak path SIGTERM used
#: to take. Weak references: a pool that was garbage collected after
#: close() needs no sweeping.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def close_all_pools(timeout: float = 2.0) -> int:
    """Escalatingly close every live pool (idempotent); returns how
    many were still open. Called by the shutdown signal path and
    registered atexit as a last-resort shm sweep."""
    closed = 0
    for pool in list(_LIVE_POOLS):
        if not pool._closed:
            closed += 1
        try:
            pool.close(timeout=timeout)
        except Exception:
            pass  # last-resort cleanup must never mask the exit path
    return closed


atexit.register(close_all_pools)


class WorkerError(VmError):
    """A worker failed; carries the remote traceback (when the worker
    reported one), the worker id and the affected job ids."""

    def __init__(self, message: str, worker_id: Optional[int] = None,
                 jobs: Tuple[int, ...] = ()):
        self.worker_id = worker_id
        self.jobs = tuple(jobs)
        super().__init__(message)


class WorkerDeath(WorkerError):
    """A worker *process* died with work in flight (found by the
    liveness poll — the hang :meth:`WorkerPool.next_result` used to be
    vulnerable to). Recoverable: respawn + resubmit, or degrade."""


class PoolTimeout(VmError):
    """No result arrived within the deadline; every in-flight worker is
    still alive (a dead one raises :class:`WorkerDeath` instead), so the
    likely cause is a lost result message — re-issue the jobs."""

    def __init__(self, message: str, jobs: Tuple[int, ...] = ()):
        self.jobs = tuple(jobs)
        super().__init__(message)


@dataclass
class InFlightJob:
    """Coordinator-side record of one submitted, unanswered job.

    ``payload`` is always the structured form (dicts, SnapshotWires) so
    the recovery ladder can re-address it; ``pack`` (batch kinds only)
    turns it into envelope bytes at enqueue time — re-invoked on every
    resubmit, so a re-issue gets fresh shm references and piggyback
    acks rather than a stale copy."""

    worker_id: int
    kind: str
    payload: Any
    reissues: int = 0
    pack: Optional[Callable[[Any, int], bytes]] = None


@dataclass
class PoolStats:
    """Coordinator-side accounting for one parallel run (the CLI's
    ``--workers`` epilogue)."""

    workers: int = 0
    leases: int = 0
    batches: int = 0
    states_shipped: int = 0
    wire: WireStats = field(default_factory=WireStats)
    #: Software-state delta-wire accounting (StateWire codec) — full
    #: vs delta bytes, pages shipped/referenced, constraint suffixes.
    state_wire: StateWireStats = field(default_factory=StateWireStats)
    host_time_s: float = 0.0
    #: Which transport moved the bulk bytes ("shm" or "queue").
    transport: str = "queue"
    #: Envelope/queue/shm byte + time accounting (coordinator side;
    #: worker-side encode/decode times merge in from result envelopes).
    ipc: IpcStats = field(default_factory=IpcStats)
    #: Pool-boundary recovery events (respawns, reissues, duplicates,
    #: degraded flag); link-layer events merge in from the workers.
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    def summary(self) -> str:
        lines = [f"[pool] workers={self.workers} leases={self.leases} "
                 f"batches={self.batches} host={self.host_time_s:.3f}s "
                 f"transport={self.transport}"]
        if self.wire.snapshots_sent or self.wire.snapshots_received:
            lines.append(
                f"[pool] snapshots shipped={self.wire.snapshots_sent} "
                f"received={self.wire.snapshots_received} "
                f"chunk-hits={self.wire.chunk_hits} "
                f"misses={self.wire.chunk_misses} "
                f"logical={self.wire.logical_bits_sent}b "
                f"sent={self.wire.payload_bits_sent}b "
                f"(delta x{self.wire.delta_ratio:.1f})")
        if self.state_wire.states_sent:
            sw = self.state_wire
            lines.append(
                f"[pool] state-wire full={sw.full_states} "
                f"delta={sw.delta_states} "
                f"bytes full={sw.state_bytes_full}B "
                f"delta={sw.state_bytes_delta}B "
                f"pages shipped={sw.pages_shipped}/"
                f"ref={sw.pages_referenced} "
                f"constraints {sw.constraints_suffix}/"
                f"{sw.constraints_total} suffix "
                f"(delta x{sw.delta_ratio:.1f})")
        if self.ipc.messages_out or self.ipc.messages_in:
            lines.append(
                f"[pool] ipc queue={self.ipc.queue_bytes_out}B out/"
                f"{self.ipc.queue_bytes_in}B in "
                f"shm={self.ipc.shm_bytes_out}B out/"
                f"{self.ipc.shm_bytes_in}B in "
                f"enc={self.ipc.encode_s + self.ipc.worker_encode_s:.3f}s "
                f"dec={self.ipc.decode_s + self.ipc.worker_decode_s:.3f}s")
        if self.resilience.any:
            lines.append(self.resilience.summary())
        return "\n".join(lines)


class WorkerPool:
    """N worker processes serving engine leases and fuzz batches."""

    #: Result-queue poll slice; bounds how stale the liveness check can be.
    _POLL_S = 0.05

    def __init__(self, recipe: SessionRecipe, workers: int,
                 start_method: Optional[str] = None,
                 transport: Optional[str] = None,
                 channel: Optional[ChunkChannel] = None):
        if workers < 1:
            raise VmError(f"need at least one worker, got {workers}")
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        self._ctx = mp.get_context(start_method)
        self._recipe = recipe
        self.workers = workers
        if transport is None:
            transport = getattr(recipe, "transport", "auto")
        #: Unique tag naming every shm segment of this run (coordinator
        #: and workers alike) — lets respawn/close sweep orphans by
        #: prefix even after their owner died without cleanup.
        self.run_tag = secrets.token_hex(4)
        self.transport: Transport = make_transport(
            transport, label=f"{self.run_tag}-c0")
        #: The coordinator's chunk channel, when it ships delta wires
        #: (engine runs). respawn() clears the dead worker's known-set
        #: here so a fresh incarnation is never sent reference-only
        #: wires it cannot resolve.
        self.channel = channel
        self.stats = PoolStats(workers=workers,
                               transport=self.transport.kind,
                               ipc=self.transport.stats)
        self._jobs = [self._ctx.Queue() for _ in range(workers)]
        self._results = self._ctx.Queue()
        self._incarnations = [0] * workers
        self._job_seq = 0
        self._in_flight: Dict[int, InFlightJob] = {}
        self._closed = False
        self._procs = [self._spawn(i) for i in range(workers)]
        _LIVE_POOLS.add(self)

    def _spawn(self, worker_id: int) -> mp.Process:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self._recipe, self._jobs[worker_id],
                  self._results, self._incarnations[worker_id],
                  self.transport.kind, self.run_tag),
            daemon=True, name=f"repro-worker-{worker_id}")
        proc.start()
        return proc

    # -- job plumbing -------------------------------------------------------

    def _encode_job(self, job_id: int, info: InFlightJob) -> Any:
        """Structured payload → the object that rides the queue. Batch
        kinds pack to bytes (timed) and may land in shared memory."""
        if info.pack is None:
            return info.payload
        t0 = time.perf_counter()
        blob = info.pack(info.payload, info.worker_id)
        stats = self.transport.stats
        stats.encode_s += time.perf_counter() - t0
        stats.messages_out += 1
        queued = self.transport.place_blob(blob, info.worker_id)
        if isinstance(queued, (bytes, bytearray, memoryview)):
            stats.queue_bytes_out += len(queued)
        return queued

    def submit(self, worker_id: int, kind: str, payload: Any,
               pack: Optional[Callable[[Any, int], bytes]] = None) -> int:
        """Queue a job; returns its id (tracked until its result lands)."""
        self._job_seq += 1
        job_id = self._job_seq
        info = InFlightJob(worker_id, kind, payload, pack=pack)
        self._in_flight[job_id] = info
        self._jobs[worker_id].put((kind, job_id,
                                   self._encode_job(job_id, info)))
        return job_id

    def _accept(self, message) -> Optional[Tuple[str, int, Any]]:
        """Common result handling: duplicate drop (before any shm
        fetch), error re-raise, batch-envelope blob fetch. Returns the
        ``(kind, worker_id, data)`` triple or ``None`` to keep waiting.
        """
        kind, worker_id, job_id, data = message
        info = self._in_flight.pop(job_id, None)
        if info is None:
            self.stats.resilience.duplicate_results += 1
            return None
        if kind == "error":
            raise WorkerError(f"worker {worker_id} failed:\n{data}",
                              worker_id=worker_id, jobs=(job_id,))
        if info.kind in _BATCH_KINDS and isinstance(
                data, (bytes, bytearray, memoryview, tuple)):
            stats = self.transport.stats
            try:
                data = self.transport.fetch_blob(data, worker_id)
            except ShmSegmentGone:
                # The referenced segment died with its worker before we
                # could read it: treat as a lost result — the job goes
                # back in flight and the deadline/respawn ladder
                # recovers it (a respawned worker re-executes and ships
                # fresh segments).
                self._in_flight[job_id] = info
                return None
            stats.messages_in += 1
            if isinstance(data, (bytes, bytearray, memoryview)):
                stats.queue_bytes_in += len(data)
        return kind, worker_id, data

    def next_result(self, timeout: Optional[float] = None
                    ) -> Tuple[str, int, Any]:
        """Blocking wait for the next worker result.

        Polls worker liveness while waiting: a dead worker with jobs in
        flight raises :class:`WorkerDeath` (naming worker and leases)
        instead of hanging forever; a missed *timeout* (all workers
        alive) raises :class:`PoolTimeout`; a worker-reported exception
        re-raises as :class:`WorkerError` with the remote traceback.
        Duplicate deliveries of an already-answered job are discarded.
        """
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            try:
                message = self._results.get(timeout=self._POLL_S)
            except queue_mod.Empty:
                self._check_liveness()
                if deadline is not None and time.monotonic() >= deadline:
                    jobs = tuple(sorted(self._in_flight))
                    raise PoolTimeout(
                        f"no worker result within {timeout:.1f}s; "
                        f"jobs in flight: {list(jobs)}", jobs=jobs)
                continue
            accepted = self._accept(message)
            if accepted is not None:
                return accepted

    def drain_results(self) -> List[Tuple[str, int, Any]]:
        """Non-blocking sweep of every already-delivered result — the
        coordinator's async-draining half: collect finished work (and
        free those workers for the next dispatch) before paying the
        decode cost of any of it."""
        drained: List[Tuple[str, int, Any]] = []
        while True:
            try:
                message = self._results.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return drained
            accepted = self._accept(message)
            if accepted is not None:
                drained.append(accepted)

    def _check_liveness(self) -> None:
        for worker_id, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            jobs = tuple(sorted(
                job_id for job_id, info in self._in_flight.items()
                if info.worker_id == worker_id))
            if jobs:
                raise WorkerDeath(
                    f"worker {worker_id} (pid {proc.pid}, exit code "
                    f"{proc.exitcode}) died with lease(s) "
                    f"{list(jobs)} in flight",
                    worker_id=worker_id, jobs=jobs)

    def broadcast(self, kind: str, payload: Any) -> List[int]:
        return [self.submit(i, kind, payload) for i in range(self.workers)]

    def warm(self, harness: str) -> None:
        """Pre-build every worker's harness (target elaboration is the
        expensive part) so benchmarks measure execution, not setup."""
        self.broadcast("warm", {"kind": harness})
        for _ in range(self.workers):
            kind, _, _ = self.next_result(timeout=120)
            assert kind == "warmed"

    # -- recovery -----------------------------------------------------------

    def in_flight(self, job_id: int) -> InFlightJob:
        return self._in_flight[job_id]

    def in_flight_jobs(self) -> List[int]:
        return sorted(self._in_flight)

    def in_flight_payloads(self) -> List[Tuple[str, Any]]:
        """Every unanswered job's ``(kind, structured payload)`` in
        submission order — the journal checkpoint's view of work that
        must be re-issued after a coordinator crash (payloads hold the
        parked live states, exactly what the recovery ladder re-packs).
        """
        return [(info.kind, info.payload)
                for _job_id, info in sorted(self._in_flight.items())]

    def take_in_flight(self) -> List[Tuple[int, InFlightJob]]:
        """Remove and return every in-flight job (the degrade path hands
        them to an :class:`InlinePool`)."""
        items = sorted(self._in_flight.items())
        self._in_flight.clear()
        return items

    def respawn(self, worker_id: int) -> List[int]:
        """Replace a dead (or wedged) worker with a fresh process under
        the next incarnation number. The worker gets a **fresh** job
        queue: a process killed while blocked in ``get()`` dies holding
        the queue's reader lock, which would wedge its successor — and
        any queued copies of in-flight jobs are stale anyway (their
        delta wires were encoded against the dead incarnation's chunk
        pool) and must be re-encoded and :meth:`resubmit`-ted by the
        caller.

        Everything the dead incarnation held dies with it: its chunk
        pool (the channel's ``known`` entry is cleared so the fresh
        incarnation is never sent unresolvable reference-only wires),
        its outstanding shm references (cancelled, so its slabs cannot
        wedge the arena) and its own orphaned shm segments (swept by
        run-tag prefix — the dead owner cannot unlink them).

        Returns the worker's in-flight job ids."""
        proc = self._procs[worker_id]
        if proc.is_alive():
            proc.terminate()
            proc.join(1.0)
        old = self._jobs[worker_id]
        self._jobs[worker_id] = self._ctx.Queue()
        self._drain(old)
        try:
            old.close()
            old.cancel_join_thread()
        except (OSError, ValueError):
            pass
        if self.channel is not None:
            self.channel.known.pop(worker_id, None)
        self.transport.forget_peer(worker_id)
        unlink_stale(
            f"rpr-{self.run_tag}-w{worker_id}"
            f"i{self._incarnations[worker_id]}-")
        self._incarnations[worker_id] += 1
        self._procs[worker_id] = self._spawn(worker_id)
        self.stats.resilience.worker_respawns += 1
        return sorted(job_id for job_id, info in self._in_flight.items()
                      if info.worker_id == worker_id)

    def resubmit(self, job_id: int, worker_id: Optional[int] = None) -> None:
        """Re-queue an in-flight job (after a respawn or a missed
        deadline). The payload must already be re-addressed by the
        caller when it carries a delta wire; batch kinds are re-packed
        (fresh envelope, fresh shm references)."""
        info = self._in_flight[job_id]
        if worker_id is not None:
            info.worker_id = worker_id
        info.reissues += 1
        self._jobs[info.worker_id].put(
            (info.kind, job_id, self._encode_job(job_id, info)))
        self.stats.resilience.lease_reissues += 1

    # -- lifecycle ----------------------------------------------------------

    @staticmethod
    def _drain(queue) -> None:
        try:
            while True:
                queue.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            pass

    def close(self, timeout: float = 5.0) -> None:
        """Shut the pool down: STOP sentinels, then join → terminate →
        kill escalation, then drain the queues so their feeder threads
        cannot wedge interpreter exit, then release the transport and
        sweep every shm segment carrying this run's tag (a worker that
        died before its own cleanup leaves orphans only until here).
        Idempotent, and safe when workers already crashed (joining a
        dead process is a no-op)."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        for queue in self._jobs:
            try:
                queue.put_nowait(STOP)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            try:
                proc.join(max(0.1, deadline - time.monotonic()))
            except (OSError, ValueError, AssertionError):
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
        for proc in self._procs:
            if proc.is_alive():
                # terminate (SIGTERM) was ignored: escalate to SIGKILL.
                kill = getattr(proc, "kill", proc.terminate)
                kill()
                proc.join(1.0)
        for queue in [*self._jobs, self._results]:
            self._drain(queue)
            try:
                queue.close()
                queue.cancel_join_thread()
            except (OSError, ValueError):
                pass
        self._in_flight.clear()
        self.transport.close()
        unlink_stale(f"rpr-{self.run_tag}-")

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InlinePool:
    """Degraded-mode stand-in for :class:`WorkerPool`: the same submit /
    next_result / close surface, executed synchronously in-process by
    one harness (fault-free — there is no process left to kill).

    The coordinator swaps this in when the respawn cap is exhausted and
    :class:`~repro.resilience.RetryPolicy` allows degradation; the run
    finishes serially with identical verdicts. Batch kinds arrive here
    in their *structured* form (the packed envelope only ever existed on
    the real pool's queue) and their results stay structured — the
    coordinators accept both shapes.
    """

    def __init__(self, recipe: SessionRecipe,
                 stats: Optional[PoolStats] = None):
        self._recipe = recipe
        self.workers = 1
        self.stats = stats if stats is not None else PoolStats(workers=1)
        self.stats.resilience.degraded = True
        self._harnesses: Dict[str, Any] = {}
        # Entries are (kind, worker_id, result, payload): the payload
        # rides along until its result is consumed, so a journal
        # checkpoint taken while results sit here still sees the leases
        # (in_flight_payloads) — parity with the real pool.
        self._pending: Deque[Tuple[str, int, Any, Any]] = deque()

    def _harness(self, kind: str):
        if kind not in self._harnesses:
            self._harnesses[kind] = _HARNESS_TYPES[kind](self._recipe)
        return self._harnesses[kind]

    def submit(self, worker_id: int, kind: str, payload: Any,
               pack: Optional[Callable[[Any, int], bytes]] = None) -> int:
        """Execute the job now; the result is delivered (echoing the
        requested worker id, so coordinator bookkeeping is undisturbed)
        on the next :meth:`next_result`."""
        if kind == "warm":
            self._harness(payload["kind"])
            self._pending.append(("warmed", worker_id, None, None))
        elif kind == "lease":
            self._pending.append(
                ("lease", worker_id,
                 self._harness("engine").run_lease(payload), payload))
        elif kind == "lease-batch":
            engine = self._harness("engine")
            self._pending.append(
                ("lease-batch", worker_id,
                 {"results": [engine.run_lease(lease)
                              for lease in payload["leases"]],
                  "encode_s": 0.0, "decode_s": 0.0}, payload))
        elif kind == "fuzz":
            self._pending.append(
                ("fuzz", worker_id,
                 self._harness("fuzz").run_batch(payload), payload))
        elif kind == "fuzz-batch":
            res = self._harness("fuzz").run_batch(
                {"items": payload["items"]})
            res["encode_s"] = res["decode_s"] = 0.0
            self._pending.append(("fuzz-batch", worker_id, res, payload))
        elif kind == "boot-digests":
            self._pending.append(
                ("boot-digests", worker_id,
                 self._harness("fuzz").boot_digests(), None))
        else:
            raise VmError(f"unknown job kind {kind!r}")
        return 0

    def next_result(self, timeout: Optional[float] = None
                    ) -> Tuple[str, int, Any]:
        if not self._pending:
            raise VmError("degraded pool has no pending results "
                          "(submit executes synchronously)")
        kind, worker_id, data, _payload = self._pending.popleft()
        return kind, worker_id, data

    def drain_results(self) -> List[Tuple[str, int, Any]]:
        drained = [(kind, worker_id, data)
                   for kind, worker_id, data, _payload in self._pending]
        self._pending.clear()
        return drained

    def in_flight_payloads(self) -> List[Tuple[str, Any]]:
        return [(kind, payload)
                for kind, _worker_id, _data, payload in self._pending
                if payload is not None]

    def broadcast(self, kind: str, payload: Any) -> List[int]:
        return [self.submit(i, kind, payload) for i in range(self.workers)]

    def warm(self, harness: str) -> None:
        self.broadcast("warm", {"kind": harness})
        for _ in range(self.workers):
            kind, _, _ = self.next_result()
            assert kind == "warmed"

    def close(self, timeout: float = 5.0) -> None:
        self._pending.clear()

    def __enter__(self) -> "InlinePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
