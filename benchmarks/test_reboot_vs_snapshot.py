"""E2b — reboot-per-path vs snapshot restore on an init-heavy driver.

Motivated by Talebi et al.'s 8800-I/O camera-driver initialisation (§I):
the init_heavy firmware performs a long MMIO configuration sequence
before any branching. The naive-consistent baseline re-executes that
prefix (after a reboot) on *every* context switch; HardSnap snapshots
past it once.

Expected shapes:
* the reboot baseline's cost grows with the INIT length; HardSnap's is
  essentially independent of it,
* the replayed-access count for the baseline ~ switches x INIT length.
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import HardSnapSession
from repro.firmware import TIMER_BASE, UART_BASE, init_heavy
from repro.peripherals import catalog

PERIPHS = [(catalog.UART, UART_BASE), (catalog.TIMER, TIMER_BASE)]
INIT_LENGTHS = (10, 50, 150)


def _run(init_writes, strategy):
    session = HardSnapSession(
        init_heavy(init_writes=init_writes, n_paths=4), PERIPHS,
        strategy=strategy, searcher="round-robin", scan_mode="functional")
    return session.run(max_instructions=150_000)


def test_reboot_vs_snapshot(benchmark):
    results = benchmark.pedantic(
        lambda: {n: {s: _run(n, s)
                     for s in ("hardsnap", "naive-consistent")}
                 for n in INIT_LENGTHS},
        rounds=1, iterations=1)

    rows = []
    for n in INIT_LENGTHS:
        hs = results[n]["hardsnap"]
        nc = results[n]["naive-consistent"]
        rows.append([
            n,
            format_si_time(hs.modelled_time_s),
            format_si_time(nc.modelled_time_s),
            nc.reboots,
            nc.replayed_accesses,
            f"{nc.modelled_time_s / hs.modelled_time_s:.0f}x",
        ])
    emit("reboot_vs_snapshot", format_table(
        ["INIT writes", "HardSnap", "naive-consistent", "reboots",
         "replayed accesses", "speedup"],
        rows,
        title="E2b: init-heavy driver — snapshot restore vs reboot+replay"))

    for n in INIT_LENGTHS:
        hs = results[n]["hardsnap"]
        nc = results[n]["naive-consistent"]
        # Same ground truth.
        assert sorted(hs.halt_codes()) == [0x200 + i for i in range(4)]
        assert hs.halt_codes() == nc.halt_codes()
        assert nc.modelled_time_s / hs.modelled_time_s > 100

    # Baseline replay traffic grows with INIT length...
    replayed = [results[n]["naive-consistent"].replayed_accesses
                for n in INIT_LENGTHS]
    assert replayed[-1] > replayed[0] * 2
    # ...while HardSnap's cost stays roughly flat (snapshot size does not
    # depend on how much firmware ran before).
    hs_times = [results[n]["hardsnap"].modelled_time_s
                for n in INIT_LENGTHS]
    assert hs_times[-1] < hs_times[0] * 5
