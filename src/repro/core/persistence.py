"""Snapshot and finding persistence.

The paper's snapshot controller stores checkpoints "on a persistent
storage (i.e., the file system)" (§III-C), and the whole point of
carrying the hardware state in a bug report is crash reproduction and
root-cause analysis *after* the run. This module provides both:

* :func:`save_snapshot` / :func:`load_snapshot` — JSON round trip for a
  :class:`~repro.targets.base.HwSnapshot` (human-inspectable, diffable
  with ordinary tools),
* :func:`export_crash_pack` — one directory per analysis run: a
  manifest, and per finding the concrete test case, the control-flow
  tail (disassembled when the program is provided) and the full hardware
  snapshot. :func:`replay_crash` restores a pack's snapshot onto a live
  target and replays the test case on the concrete core.
* :class:`SnapshotWire` — the pickle-safe, content-addressed form a
  snapshot travels as between the parallel runtime's processes: chunk
  *references* (digest + cycle per instance) plus only the chunk
  payloads the receiver does not already hold — the cross-process
  analogue of :class:`~repro.targets.orchestrator.TransferRecord`'s
  ``delta_bits``.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.core.engine import AnalysisReport
from repro.core.store import chunk_digest
from repro.errors import SnapshotError
from repro.isa.assembler import Program
from repro.isa.cpu import Cpu, CpuExit
from repro.isa.disassembler import disassemble_word
from repro.targets.base import HardwareTarget, HwSnapshot

PathLike = Union[str, pathlib.Path]
_FORMAT_VERSION = 1


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write *text* so a crash can never leave a torn or empty file:
    the bytes land in a temp file in the same directory and are moved
    into place with ``os.replace`` (atomic on POSIX — readers see the
    old contents or the new, never a prefix)."""
    target = pathlib.Path(path)
    tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


def atomic_write_json(path: PathLike, payload, **json_kwargs) -> None:
    """JSON counterpart of :func:`atomic_write_text` (reports, BENCH_*
    artifacts — anything a gate or a human later reads back)."""
    atomic_write_text(path, json.dumps(payload, **json_kwargs) + "\n")


def snapshot_to_dict(snapshot: HwSnapshot) -> dict:
    out = {
        "format": _FORMAT_VERSION,
        "method": snapshot.method,
        "bits": snapshot.bits,
        "modelled_cost_s": snapshot.modelled_cost_s,
        "states": snapshot.states,
        # Persisted images are always sealed: a file can rot in ways a
        # live snapshot cannot.
        "digest": snapshot.digest or snapshot.compute_digest(),
    }
    if snapshot.snapshot_id is not None:
        out["snapshot_id"] = snapshot.snapshot_id
    if snapshot.parent_id is not None:
        out["parent_id"] = snapshot.parent_id
    return out


def snapshot_from_dict(data: dict) -> HwSnapshot:
    if data.get("format") != _FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format {data.get('format')!r}")
    snapshot = HwSnapshot(
        states=data["states"],
        method=data.get("method", "file"),
        bits=int(data.get("bits", 0)),
        modelled_cost_s=float(data.get("modelled_cost_s", 0.0)),
        snapshot_id=data.get("snapshot_id"),
        parent_id=data.get("parent_id"),
        digest=data.get("digest"),
    )
    # Pre-resilience files carry no digest and load unchecked; sealed
    # files are verified before any target sees the state.
    snapshot.verify()
    return snapshot


def save_snapshot(snapshot: HwSnapshot, path: PathLike) -> None:
    """Write a hardware snapshot as JSON."""
    atomic_write_text(path, json.dumps(snapshot_to_dict(snapshot),
                                       indent=1, sort_keys=True))


def load_snapshot(path: PathLike) -> HwSnapshot:
    """Read a hardware snapshot written by :func:`save_snapshot`."""
    return snapshot_from_dict(json.loads(pathlib.Path(path).read_text()))


# ---------------------------------------------------------------------------
# Cross-process wire format (the parallel runtime's snapshot transport)
# ---------------------------------------------------------------------------

@dataclass
class SnapshotWire:
    """One hardware snapshot as content-addressed references + the chunk
    payloads the peer is missing.

    Everything here is plain picklable data (strings, ints, dicts): a
    wire crosses a ``multiprocessing`` queue. ``refs`` names each
    instance's state by chunk digest (the store's :func:`chunk_digest`,
    cycle counter excluded) plus the cycle it travels with; ``chunks``
    carries digest → (canonical body, state bits) only for digests the
    sender believes the receiver lacks. Chunk bodies are immutable by
    convention — receivers must never mutate them (restores copy).
    """

    #: instance name -> (chunk digest, cycle counter, state bits)
    refs: Dict[str, Tuple[str, int, int]]
    #: digest -> (canonical state body without cycle, state bits)
    chunks: Dict[str, Tuple[dict, int]] = field(default_factory=dict)
    method: str = "direct"
    bits: int = 0

    @property
    def logical_bits(self) -> int:
        """Full-image size of the referenced snapshot."""
        return sum(bits for _, _, bits in self.refs.values())

    @property
    def payload_bits(self) -> int:
        """Bits actually carried as chunk payloads (the delta)."""
        return sum(bits for _, bits in self.chunks.values())


def snapshot_to_wire(snapshot: HwSnapshot,
                     known: Optional[Set[str]] = None,
                     bits_of: Optional[Mapping[str, int]] = None
                     ) -> SnapshotWire:
    """Encode *snapshot* for the wire, omitting chunk payloads whose
    digest appears in *known* (the receiver's chunk pool, as tracked by
    the sender). ``bits_of`` maps instance name → state bits for the
    transfer accounting; unknown instances count 0.
    """
    refs: Dict[str, Tuple[str, int, int]] = {}
    chunks: Dict[str, Tuple[dict, int]] = {}
    for name, state in snapshot.states.items():
        body = {k: v for k, v in state.items() if k != "cycle"}
        digest = chunk_digest(state)
        bits = int(bits_of.get(name, 0)) if bits_of else 0
        refs[name] = (digest, int(state.get("cycle", 0)), bits)
        if known is None or digest not in known:
            chunks[digest] = (body, bits)
    return SnapshotWire(refs=refs, chunks=chunks,
                        method=snapshot.method, bits=snapshot.bits)


def snapshot_from_wire(wire: SnapshotWire,
                       pool: Mapping[str, dict]) -> HwSnapshot:
    """Reassemble a :class:`HwSnapshot` from a wire plus the receiver's
    digest → body chunk pool (which must already contain every digest
    the wire references; callers merge ``wire.chunks`` in first).

    The result is a *foreign* snapshot (no store record): the snapshot
    controller treats its first save as a full record, after which delta
    encoding resumes against the receiver's own store.
    """
    states: Dict[str, dict] = {}
    for name, (digest, cycle, _bits) in wire.refs.items():
        body = pool.get(digest)
        if body is None:
            raise SnapshotError(
                f"wire references chunk {digest!r} for instance {name!r} "
                f"but the local pool does not hold it")
        states[name] = {"cycle": cycle, **body}
    return HwSnapshot(states=states, method=wire.method, bits=wire.bits)


def export_crash_pack(report: AnalysisReport, directory: PathLike,
                      program: Optional[Program] = None) -> List[pathlib.Path]:
    """Persist every finding of *report* for offline reproduction.

    Returns the list of per-finding directories created. Layout::

        <dir>/manifest.json
        <dir>/finding_000/report.json     test case, kind, backtrace
        <dir>/finding_000/hardware.json   the full HW snapshot (if any)
    """
    root = pathlib.Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    out: List[pathlib.Path] = []
    manifest = {
        "strategy": report.strategy,
        "instructions": report.instructions,
        "findings": len(report.bugs),
        "paths": len(report.paths),
    }
    atomic_write_text(root / "manifest.json", json.dumps(manifest, indent=1))
    for i, bug in enumerate(report.bugs):
        bug_dir = root / f"finding_{i:03d}"
        bug_dir.mkdir(exist_ok=True)
        backtrace = []
        for pc in bug.backtrace:
            entry = {"pc": pc}
            if program is not None and pc in program.words:
                entry["asm"] = disassemble_word(program.words[pc], pc)
            backtrace.append(entry)
        atomic_write_text(bug_dir / "report.json", json.dumps({
            "kind": bug.kind,
            "pc": bug.pc,
            "detail": bug.detail,
            "state_id": bug.state_id,
            "steps": bug.steps,
            "test_case": bug.test_case,
            "backtrace": backtrace,
        }, indent=1))
        if bug.hw_snapshot is not None:
            save_snapshot(bug.hw_snapshot, bug_dir / "hardware.json")
        out.append(bug_dir)
    return out


def replay_crash(finding_dir: PathLike, program: Program,
                 target: HardwareTarget,
                 max_steps: int = 200_000) -> CpuExit:
    """Reproduce a persisted finding concretely.

    Restores the pack's hardware snapshot onto *target* (when present),
    then replays the test case's symbolic values on the concrete core
    with MMIO forwarded to the target. Returns the concrete exit; a
    reproduced crash raises :class:`~repro.errors.FirmwarePanic` exactly
    like the original.
    """
    finding = pathlib.Path(finding_dir)
    data = json.loads((finding / "report.json").read_text())
    hw_path = finding / "hardware.json"
    if hw_path.exists():
        snapshot = load_snapshot(hw_path)
        # The persisted snapshot is the state AT detection; reproduction
        # starts from clean hardware and re-runs the input instead.
        target.reset()
        del snapshot  # loaded above to validate the file round-trips
    sym_values = [value for _, value in sorted(data["test_case"].items())]
    cpu = Cpu(program, mmio_read=target.read, mmio_write=target.write,
              sym_values=sym_values)
    return cpu.run(max_steps=max_steps)
