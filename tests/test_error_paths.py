"""Error-path and diagnostics coverage across the library."""

import pytest

from repro import errors
from repro.hdl import elaborate, parse
from repro.instrument.emit_verilog import _masked_label, emit_verilog
from repro.isa import assemble
from repro.solver import expr as E


class TestExceptionHierarchy:
    def test_all_subclass_repro_error(self):
        for name in ("SolverError", "HdlError", "LexError", "ParseError",
                     "ElaborationError", "SimulationError",
                     "CombinationalLoopError", "InstrumentationError",
                     "BusError", "TargetError", "SnapshotError",
                     "SnapshotIntegrityError", "LinkError", "ScanShiftError",
                     "AssemblerError", "VmError", "ConcretizationError",
                     "FirmwarePanic"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_scan_shift_error_carries_context(self):
        err = errors.ScanShiftError("CRC mismatch", instance="uart",
                                    operation="capture", attempts=5)
        assert err.instance == "uart"
        assert err.operation == "capture"
        assert err.attempts == 5
        for fragment in ("uart", "capture", "5", "CRC mismatch"):
            assert fragment in str(err)

    def test_hdl_error_carries_line(self):
        err = errors.ParseError("boom", line=17)
        assert err.line == 17
        assert "line 17" in str(err)

    def test_assembler_error_carries_line(self):
        err = errors.AssemblerError("bad", line=3)
        assert err.line == 3 and "line 3" in str(err)


class TestDiagnosticsQuality:
    def test_elaborator_names_the_unknown_identifier(self):
        with pytest.raises(errors.ElaborationError) as excinfo:
            elaborate("module m (input wire clk, output wire o); "
                      "assign o = phantom; endmodule", "m")
        assert "phantom" in str(excinfo.value)

    def test_parser_reports_location_and_expectation(self):
        # `banana x;` parses as an instantiation and fails at the missing
        # connection list: the error names what was expected and where.
        with pytest.raises(errors.ParseError) as excinfo:
            parse("module m ();\n\n banana x; endmodule")
        assert "expected" in str(excinfo.value)
        assert "line 3" in str(excinfo.value)

    def test_assembler_reports_line_of_bad_mnemonic(self):
        with pytest.raises(errors.AssemblerError) as excinfo:
            assemble("start:\n    nop\n    explode r1\n")
        assert excinfo.value.line == 3

    def test_solver_width_error_mentions_widths(self):
        with pytest.raises(errors.SolverError) as excinfo:
            E.add(E.var("wa", 8), E.var("wb", 9))
        assert "8" in str(excinfo.value) and "9" in str(excinfo.value)


class TestEmitVerilogDetails:
    def test_casez_wildcard_label_rendering(self):
        assert _masked_label(0b1000, 0b1100, 4) == "4'b10??"
        assert _masked_label(0xA, 0xF, 4) == "4'ha"

    def test_emitted_casez_reparses_with_wildcards(self):
        src = """
        module m (input wire clk, input wire [3:0] s, output reg [1:0] o);
            always @(*) begin
                casez (s)
                    4'b1???: o = 2'd1;
                    4'b01??: o = 2'd2;
                    default: o = 2'd0;
                endcase
            end
        endmodule
        """
        design = elaborate(src, "m")
        text = emit_verilog(design)
        assert "4'b1???" in text
        redesign = elaborate(text, "m")
        from repro.sim import Interpreter
        s1, s2 = Interpreter(design), Interpreter(redesign)
        for value in range(16):
            s1.poke("s", value)
            s2.poke("s", value)
            assert s1.peek("o") == s2.peek("o"), value

    def test_initial_values_emitted(self):
        src = """
        module m (input wire clk, output wire [7:0] q);
            reg [7:0] r = 8'hA7;
            always @(posedge clk) r <= r;
            assign q = r;
        endmodule
        """
        design = elaborate(src, "m")
        text = emit_verilog(design)
        assert "8'ha7" in text.lower()
        from repro.sim import Interpreter
        assert Interpreter(elaborate(text, "m")).peek("q") == 0xA7


class TestExpressionIntrospection:
    def test_walk_visits_all_nodes(self):
        x, y = E.var("wk1", 8), E.var("wk2", 8)
        node = E.ite(E.ult(x, y), E.add(x, y), E.const(0, 8))
        ops = {n.op for n in node.walk()}
        assert {"ite", "ult", "add", "var", "const"} <= ops

    def test_repr_forms(self):
        x = E.var("rp", 8)
        assert "rp:8" in repr(x)
        assert "0xff:8" in repr(E.const(0xFF, 8))
        assert "extract[3:0]" in repr(E.extract(E.var("rq", 16), 3, 0))
