"""A1 — ablation: the snapshot IP's SRAM cache (paper §III-C).

"For performance reasons, the scanning IP saves peripherals snapshots in
an SRAM memory. This optimization significantly reduces the time taken
for saving or restoring hardware peripheral state."

We replay the same snapshot-heavy analysis (dispatcher-8, round-robin)
on FPGA targets with the SRAM enabled and disabled, and additionally
sweep the SRAM size to show the eviction regime in between.
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import HardSnapSession
from repro.firmware import TIMER_BASE, dispatcher
from repro.peripherals import catalog
from repro.targets import FpgaTarget


def _run(sram_bits):
    target = FpgaTarget(scan_mode="functional", sram_bits=sram_bits)
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    session = HardSnapSession(dispatcher(8, work_cycles=8),
                              [], target=target, searcher="round-robin")
    report = session.run(max_instructions=60_000)
    return report, target


def test_ablation_sram_cache(benchmark):
    configs = {
        "SRAM 4 Mbit (default)": 4 * 1024 * 1024,
        "SRAM 1 kbit (thrashing)": 1024,
        "SRAM off (host only)": 1,
    }
    results = benchmark.pedantic(
        lambda: {name: _run(bits) for name, bits in configs.items()},
        rounds=1, iterations=1)

    rows = []
    for name, (report, target) in results.items():
        ip = target.ip.stats
        rows.append([
            name,
            report.snapshot_saves, report.snapshot_restores,
            ip.sram_hits, ip.host_round_trips, ip.evictions,
            format_si_time(report.modelled_time_s),
        ])
    emit("ablation_sram_cache", format_table(
        ["configuration", "saves", "restores", "SRAM hits",
         "host round-trips", "evictions", "modelled time"],
        rows, title="A1: snapshot SRAM cache ablation (dispatcher-8)"))

    default = results["SRAM 4 Mbit (default)"][0]
    thrash = results["SRAM 1 kbit (thrashing)"][0]
    off = results["SRAM off (host only)"][0]
    # Same analysis outcome...
    assert default.halt_codes() == thrash.halt_codes() == off.halt_codes()
    # ...with monotonically degrading snapshot cost as the cache shrinks.
    assert default.modelled_time_s < thrash.modelled_time_s \
        < off.modelled_time_s
    assert off.modelled_time_s > 1.5 * default.modelled_time_s
    assert results["SRAM off (host only)"][1].ip.stats.sram_hits == 0
    assert results["SRAM 4 Mbit (default)"][1].ip.stats.sram_hits > 0
    assert results["SRAM 1 kbit (thrashing)"][1].ip.stats.evictions > 0
