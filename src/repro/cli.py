"""Command-line interface.

::

    python -m repro.cli instrument design.v --top periph [-o out.v]
    python -m repro.cli lint design.v --top periph [--format json]
    python -m repro.cli lint --catalog
    python -m repro.cli run firmware.s --peripheral timer@0x40000000 ...
    python -m repro.cli fuzz firmware.s --peripheral timer@0x40000000 -n 500
    python -m repro.cli resume campaign.journal/
    python -m repro.cli replay campaign.journal/
    python -m repro.cli disasm firmware.s
    python -m repro.cli corpus
    python -m repro.cli table1

``run``/``fuzz`` accept ``--journal DIR`` to event-source the campaign
(crash-safe: ``resume`` continues an interrupted journal to a verdict
byte-identical to an uninterrupted run; ``replay`` deterministically
re-executes a sealed one and checks the recorded verdict). All campaign
commands install graceful SIGINT/SIGTERM handling: the first signal
checkpoints and drains, the second forces pool teardown.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Tuple

from repro.analysis import format_table
from repro.core import HardSnapSession, SnapshotFuzzer
from repro.core.journal import Journal
from repro.core.persistence import atomic_write_json
from repro.core.shutdown import graceful_shutdown
from repro.errors import InstrumentationError
from repro.hdl import elaborate
from repro.instrument import (emit_verilog, insert_scan_chain, machine_report,
                              overhead_row)
from repro.isa import assemble
from repro.isa.disassembler import disassemble_program
from repro.peripherals import catalog
from repro.targets import FpgaTarget


def _parse_peripherals(items: List[str]) -> List[Tuple]:
    out = []
    for item in items:
        name, _, base_text = item.partition("@")
        base = int(base_text, 0) if base_text else 0x4000_0000
        out.append((catalog.get(name), base))
    return out


def _resilience_overrides(args) -> dict:
    """SessionConfig overrides for --fault-plan / retry-policy flags."""
    from repro.resilience import FaultPlan, RetryPolicy
    out = {}
    if args.fault_plan:
        out["fault_plan"] = FaultPlan.parse(args.fault_plan)
    changes = {}
    if args.respawn_cap is not None:
        changes["respawn_cap"] = args.respawn_cap
    if args.link_retries is not None:
        changes["max_link_retries"] = args.link_retries
    if args.result_deadline is not None:
        changes["result_deadline_s"] = args.result_deadline
    if changes:
        out["retry_policy"] = RetryPolicy(**changes)
    return out


def _add_resilience_args(p) -> None:
    p.add_argument("--fault-plan", metavar="SPEC",
                   help="seeded fault-injection plan, e.g. "
                        "'seed=1,scan_corrupt=0.01,kill=1@0' "
                        "(see docs/RESILIENCE.md)")
    p.add_argument("--respawn-cap", type=int, default=None,
                   help="worker respawns before degrading to serial")
    p.add_argument("--link-retries", type=int, default=None,
                   help="scan/MMIO retransmits before giving up")
    p.add_argument("--result-deadline", type=float, default=None,
                   help="seconds to wait for a worker result before "
                        "re-issuing the job (fault plans only)")


def cmd_instrument(args) -> int:
    source = open(args.design).read()
    design = elaborate(source, args.top, source_file=args.design)
    try:
        result = insert_scan_chain(design, clock=args.clock,
                                   include=args.include or None,
                                   preflight=not args.no_lint)
    except InstrumentationError as exc:
        print(f"instrument: {exc}", file=sys.stderr)
        return 1
    text = emit_verilog(result.design)
    if args.output:
        open(args.output, "w").write(text)
        print(f"instrumented design written to {args.output}")
    else:
        print(text)
    row = overhead_row(design, clock=args.clock, result=result)
    print(f"// chain length: {row.chain_length} bits "
          f"({row.flip_flops} FFs + {row.memory_bits} memory bits), "
          f"{row.added_muxes} scan muxes added", file=sys.stderr)
    if args.report:
        payload = machine_report(design, result=result, clock=args.clock)
        atomic_write_json(args.report, payload, indent=2, sort_keys=True)
        print(f"machine-readable report written to {args.report}",
              file=sys.stderr)
    return 0


def _lint_config(args):
    from repro.lint import LintConfig

    overrides = {}
    for item in args.severity or []:
        rule_id, _, level = item.partition("=")
        if level not in ("error", "warning", "info"):
            raise SystemExit(f"bad --severity {item!r}: expected "
                             f"RULE=error|warning|info")
        overrides[rule_id] = level
    return LintConfig(
        disabled=frozenset(args.disable or []),
        severity_overrides=overrides,
        clock=args.clock,
        include=tuple(args.include) if args.include else None,
        memory_limit_bits=args.memory_limit_bits,
        readback=not args.no_readback)


def cmd_lint(args) -> int:
    from repro.lint import lint_catalog, lint_source, render_json

    config = _lint_config(args)
    if args.catalog:
        reports = lint_catalog(config=config)
    else:
        if not args.design or not args.top:
            raise SystemExit("lint: provide DESIGN and --top, or --catalog")
        source = open(args.design).read()
        reports = [lint_source(source, args.top, config,
                               source_file=args.design)]
    if args.format == "json":
        text = render_json(reports)
    else:
        text = "\n".join(r.render_text() for r in reports)
    if args.output:
        open(args.output, "w").write(text + "\n")
        print(f"lint report written to {args.output}")
    else:
        print(text)
    return 0 if all(r.ok for r in reports) else 1


def _print_opt_report(target) -> None:
    """One line per hosted peripheral the netlist optimizer touched."""
    lines = []
    for name, instance in getattr(target, "instances", {}).items():
        report = getattr(instance.sim, "opt_report", None)
        if report is not None and report.total:
            lines.append(f"  {name}: {report.summary()}")
    if lines:
        print("netlist optimization (disable with --no-opt):")
        for line in lines:
            print(line)


def _print_run_report(report, pool_stats=None, session=None) -> int:
    print(report.summary())
    for path in report.halted_paths:
        print(f"  path {path.state_id}: halt {path.halt_code} "
              f"steps {path.steps} test case {path.test_case}")
    for bug in report.bugs:
        print(f"  BUG {bug.summary()}")
    if pool_stats is not None:
        print(pool_stats.summary())
    elif session is not None and report.snapshot_saves:
        print(session.engine.controller.stats_table())
    if report.resilience.any:
        print(report.resilience.summary())
    if report.stop_reason == "interrupted":
        return 130  # the campaign wound down on a shutdown signal
    return 1 if report.bugs else 0


def _print_fuzz_report(report, pool_stats=None) -> int:
    print(report.summary())
    for crash in report.crashes[:10]:
        print(f"  crash @{crash.execution}: {crash.reason}")
        print(f"    input: {crash.input_bytes.hex()}")
    if pool_stats is not None:
        print(pool_stats.summary())
    if report.resilience.any:
        print(report.resilience.summary())
    if report.stop_reason == "interrupted":
        return 130  # the campaign wound down on a shutdown signal
    return 1 if report.crashes else 0


def cmd_run(args) -> int:
    firmware = open(args.firmware).read()
    resilience = _resilience_overrides(args)
    # A journaled campaign runs through the parallel coordinator even at
    # --workers 1 (the journal's checkpoint format is the coordinator's;
    # verdicts are worker-count-independent, so this changes nothing).
    if args.workers > 1 or args.journal:
        from repro.parallel import ParallelAnalysisEngine
        if args.strategy != "hardsnap":
            raise SystemExit("run: --workers/--journal require --strategy "
                             "hardsnap (snapshots make states portable)")
        with graceful_shutdown(), ParallelAnalysisEngine(
                firmware, _parse_peripherals(args.peripheral),
                workers=args.workers, transport=args.transport,
                delta_state=not args.no_delta_state,
                journal=args.journal,
                checkpoint_every=args.checkpoint_every,
                target=args.target, searcher=args.searcher,
                concretization=args.concretization, scan_mode="functional",
                snapshot_flatten_threshold=args.flatten_threshold,
                opt=not args.no_opt,
                **resilience) as engine:
            report = engine.run(max_instructions=args.max_instructions,
                                stop_after_bugs=args.stop_after_bugs)
            pool_stats = engine.pool_stats
        return _print_run_report(report, pool_stats=pool_stats)
    with graceful_shutdown():
        session = HardSnapSession(
            firmware, _parse_peripherals(args.peripheral),
            target=args.target, strategy=args.strategy,
            searcher=args.searcher,
            concretization=args.concretization, scan_mode="functional",
            snapshot_flatten_threshold=args.flatten_threshold,
            opt=not args.no_opt,
            lane_width=args.lane_width, lane_steps=args.lane_steps,
            **resilience)
        report = session.run(max_instructions=args.max_instructions,
                             stop_after_bugs=args.stop_after_bugs)
    _print_opt_report(session.target)
    return _print_run_report(report, session=session)


def cmd_fuzz(args) -> int:
    seeds = [bytes.fromhex(s) for s in args.seed] or None
    resilience = _resilience_overrides(args)
    if args.workers > 1 or args.journal:
        from repro.parallel import ParallelFuzzer
        if args.reset != "snapshot":
            raise SystemExit("fuzz: --workers/--journal require "
                             "--reset snapshot")
        firmware = open(args.firmware).read()
        with graceful_shutdown(), ParallelFuzzer(
                firmware, _parse_peripherals(args.peripheral),
                seeds=seeds, workers=args.workers,
                transport=args.transport,
                batch_size=args.batch_size,
                journal=args.journal,
                checkpoint_every=args.checkpoint_every,
                seed=args.rng_seed, opt=not args.no_opt,
                **resilience) as fuzzer:
            report = fuzzer.run(executions=args.executions)
            pool_stats = fuzzer.pool_stats
        return _print_fuzz_report(report, pool_stats=pool_stats)
    with graceful_shutdown():
        program = assemble(open(args.firmware).read())
        target = FpgaTarget(scan_mode="functional", opt=not args.no_opt)
        for spec, base in _parse_peripherals(args.peripheral):
            target.add_peripheral(spec, base)
        _print_opt_report(target)
        if resilience.get("fault_plan") is not None:
            target.attach_resilience(resilience["fault_plan"],
                                     resilience.get("retry_policy"))
        fuzzer = SnapshotFuzzer(program, target, seeds=seeds,
                                reset=args.reset, seed=args.rng_seed)
        report = fuzzer.run(executions=args.executions,
                            batch_size=args.batch_size)
    return _print_fuzz_report(report)


def cmd_resume(args) -> int:
    """Continue an interrupted journaled campaign to its verdict."""
    mode = Journal.campaign_mode(args.journal)
    with graceful_shutdown():
        if mode == "dse":
            from repro.parallel import ParallelAnalysisEngine
            with ParallelAnalysisEngine.resume(
                    args.journal, workers=args.workers) as engine:
                report = engine.resume_run()
                pool_stats = engine.pool_stats
            return _print_run_report(report, pool_stats=pool_stats)
        from repro.parallel import ParallelFuzzer
        with ParallelFuzzer.resume(args.journal,
                                   workers=args.workers) as fuzzer:
            report = fuzzer.resume_run()
            pool_stats = fuzzer.pool_stats
        return _print_fuzz_report(report, pool_stats=pool_stats)


def cmd_replay(args) -> int:
    """Deterministically re-execute a journaled campaign from its
    recorded recipe (journaling off) and check the verdict against the
    sealed one; fuzz crashes are additionally re-executed concretely on
    a fresh target (the :func:`repro.core.persistence.replay_crash`
    discipline applied to journal history)."""
    journal = Journal.open(args.journal, readonly=True)
    opened = journal.first("campaign-opened")
    if opened is None:
        raise SystemExit(f"replay: {args.journal} records no campaign")
    setup = journal.get_blob(opened["blob"])
    sealed = journal.last("campaign-sealed")
    with graceful_shutdown():
        if opened["mode"] == "dse":
            from repro.parallel import ParallelAnalysisEngine
            with ParallelAnalysisEngine(
                    recipe=setup["recipe"],
                    workers=args.workers or setup["workers"],
                    lease_budget=setup["lease_budget"],
                    lease_batch=setup["lease_batch"]) as engine:
                report = engine.run(**setup["run_kwargs"])
                pool_stats = engine.pool_stats
            status = _print_run_report(report, pool_stats=pool_stats)
        else:
            from repro.core.fuzzer import execute_input
            from repro.parallel import ParallelFuzzer
            with ParallelFuzzer(
                    recipe=setup["recipe"], seeds=setup["seeds"],
                    seed=setup["seed"], batch_size=setup["batch_size"],
                    workers=args.workers or setup["workers"]) as fuzzer:
                report = fuzzer.run(executions=setup["executions"])
                pool_stats = fuzzer.pool_stats
            status = _print_fuzz_report(report, pool_stats=pool_stats)
            for crash in report.crashes:
                target = setup["recipe"].target.build()
                _exit, _edges, reason, pc = execute_input(
                    setup["recipe"].program, target, crash.input_bytes,
                    max_steps=setup["recipe"].max_steps_per_exec)
                ok = reason is not None
                print(f"  replayed crash @{crash.execution}: "
                      f"{'reproduced' if ok else 'NOT reproduced'} "
                      f"({reason or 'no crash'} @0x{pc:x})")
                if not ok:
                    status = 1
    verdict = report.verdict_summary()
    if sealed is None:
        print("replay: journal is unsealed (campaign never completed); "
              "no recorded verdict to compare")
        return status
    if verdict == sealed["verdict"]:
        print("replay: verdict matches the sealed campaign verdict")
        return status
    print("replay: VERDICT MISMATCH against the sealed campaign:\n"
          f"  sealed:   {sealed['verdict']}\n"
          f"  replayed: {verdict}")
    return 1


def cmd_disasm(args) -> int:
    program = assemble(open(args.firmware).read())
    for line in disassemble_program(program.words):
        print(line)
    return 0


def cmd_corpus(args) -> int:
    rows = []
    for spec in catalog.EXTENDED_CORPUS:
        design = spec.elaborate()
        stats = design.stats()
        rows.append([spec.name, spec.bus, f"{spec.window_size:#x}",
                     stats["flip_flops"], stats["memory_bits"],
                     stats["state_bits"], "yes" if spec.has_irq else "no"])
    print(format_table(
        ["peripheral", "bus", "window", "flip-flops", "mem bits",
         "state bits", "irq"],
        rows, title="peripheral corpus"))
    return 0


def cmd_table1(args) -> int:
    from repro.analysis.table1 import render
    print(render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HardSnap reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("instrument",
                       help="insert a scan chain into a Verilog design")
    p.add_argument("design", help="Verilog source file")
    p.add_argument("--top", required=True, help="top module name")
    p.add_argument("--clock", default="clk")
    p.add_argument("--include", action="append",
                   help="restrict to sub-component prefix (repeatable)")
    p.add_argument("-o", "--output")
    p.add_argument("--no-lint", action="store_true",
                   help="skip the pre-flight static analysis")
    p.add_argument("--report",
                   help="write a machine-readable JSON report here")
    p.set_defaults(func=cmd_instrument)

    p = sub.add_parser(
        "lint", help="statically analyze a design (RTL defects + "
                     "snapshot-consistency)")
    p.add_argument("design", nargs="?", help="Verilog source file")
    p.add_argument("--top", help="top module name")
    p.add_argument("--catalog", action="store_true",
                   help="lint every peripheral of the corpus instead")
    p.add_argument("--clock", default="clk")
    p.add_argument("--include", action="append",
                   help="scan-coverage sub-component prefix (repeatable)")
    p.add_argument("--memory-limit-bits", type=int, default=16384)
    p.add_argument("--no-readback", action="store_true",
                   help="target has no configuration readback: memories "
                        "over the limit become errors")
    p.add_argument("--disable", action="append", metavar="RULE",
                   help="disable a rule id (repeatable)")
    p.add_argument("--severity", action="append", metavar="RULE=LEVEL",
                   help="override a rule's severity (repeatable)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("-o", "--output", help="write the report to a file")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("run", help="symbolically co-test firmware")
    p.add_argument("firmware", help="HS32 assembly file")
    p.add_argument("--peripheral", action="append", default=[],
                   help="name@base, e.g. timer@0x40000000 (repeatable)")
    p.add_argument("--target", choices=["fpga", "simulator"],
                   default="fpga")
    p.add_argument("--strategy", default="hardsnap",
                   choices=["hardsnap", "naive-consistent",
                            "naive-inconsistent"])
    p.add_argument("--searcher", default="affinity")
    p.add_argument("--concretization", default="performance",
                   choices=["performance", "completeness"])
    p.add_argument("--max-instructions", type=int, default=1_000_000)
    p.add_argument("--stop-after-bugs", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="shard exploration across N worker processes "
                        "(hardsnap strategy only)")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "shm", "queue"],
                   help="parallel IPC transport: shared-memory slabs "
                        "(shm), plain queues (queue), or probe (auto)")
    p.add_argument("--no-delta-state", action="store_true",
                   help="ship full state pickles instead of dirty-page "
                        "+ constraint-suffix deltas (measurement "
                        "baseline)")
    p.add_argument("--no-opt", action="store_true",
                   help="skip the netlist optimizer (repro.opt) for "
                        "hosted designs")
    p.add_argument("--flatten-threshold", type=int, default=8,
                   help="delta-chain length before the snapshot store "
                        "materialises a full record")
    p.add_argument("--lane-width", type=int, default=1,
                   help="states advanced per scheduling pass (>1 batches "
                        "forked snapshot states through the predecoded "
                        "stepper)")
    p.add_argument("--lane-steps", type=int, default=1,
                   help="instructions granted to each lane per pass")
    p.add_argument("--journal", metavar="DIR",
                   help="event-source the campaign into DIR (crash-safe; "
                        "continue later with 'repro resume DIR')")
    p.add_argument("--checkpoint-every", type=int, default=8,
                   help="journaled runs: envelopes merged between "
                        "periodic checkpoints")
    _add_resilience_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("fuzz", help="snapshot-based coverage-guided fuzzing")
    p.add_argument("firmware")
    p.add_argument("--peripheral", action="append", default=[])
    p.add_argument("-n", "--executions", type=int, default=500)
    p.add_argument("--reset", choices=["snapshot", "reboot"],
                   default="snapshot")
    p.add_argument("--seed", action="append", default=[],
                   help="hex seed input (repeatable)")
    p.add_argument("--rng-seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="shard executions across N worker processes "
                        "(snapshot reset only)")
    p.add_argument("--transport", default="auto",
                   choices=["auto", "shm", "queue"],
                   help="parallel IPC transport: shared-memory slabs "
                        "(shm), plain queues (queue), or probe (auto)")
    p.add_argument("--no-opt", action="store_true",
                   help="skip the netlist optimizer (repro.opt) for "
                        "hosted designs")
    p.add_argument("--batch-size", type=int, default=32,
                   help="mutation scheduling granularity; a parallel run "
                        "reproduces a serial run with the same batch size")
    p.add_argument("--journal", metavar="DIR",
                   help="event-source the campaign into DIR (crash-safe; "
                        "continue later with 'repro resume DIR')")
    p.add_argument("--checkpoint-every", type=int, default=8,
                   help="journaled runs: batches merged between "
                        "periodic checkpoints")
    _add_resilience_args(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "resume", help="continue an interrupted journaled campaign")
    p.add_argument("journal", help="journal directory from --journal")
    p.add_argument("--workers", type=int, default=None,
                   help="override the recorded worker count (verdicts "
                        "are worker-count-independent)")
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser(
        "replay", help="re-execute a journaled campaign deterministically "
                       "and check the sealed verdict")
    p.add_argument("journal", help="journal directory from --journal")
    p.add_argument("--workers", type=int, default=None,
                   help="override the recorded worker count")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("disasm", help="assemble + disassemble firmware")
    p.add_argument("firmware")
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("corpus", help="list the peripheral corpus")
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("table1", help="print the related-work comparison")
    p.set_defaults(func=cmd_table1)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Second shutdown signal: pools are already reaped by the
        # handler; exit with the conventional SIGINT status.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
