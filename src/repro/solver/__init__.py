"""Quantifier-free bitvector constraint solving.

This package is the decision-procedure substrate for the symbolic virtual
machine: an expression DAG (:mod:`~repro.solver.expr`), a rewriting
simplifier (:mod:`~repro.solver.simplify`), a Tseitin bit-blaster
(:mod:`~repro.solver.bitblast`) and a CDCL SAT solver
(:mod:`~repro.solver.sat`), fronted by :class:`~repro.solver.solver.Solver`.
"""

from repro.solver import expr
from repro.solver.solver import SAT, UNSAT, CheckResult, Solver, SolverStats

__all__ = ["expr", "Solver", "CheckResult", "SolverStats", "SAT", "UNSAT"]
