"""Delta-encoded software-state wire: ExecState without the full pickle.

HardSnap ships *hardware* state incrementally — only the scan-chain
bits that changed cross the boundary — and :mod:`repro.parallel.wire`
reproduced that for snapshots. This module does the same for the
*software* half of a lease, which until now crossed the pool boundary
as a full ``pickle.dumps(ExecState)``: every COW memory page, the whole
constraint list, and re-pickled BitVec DAGs, per lease.

The codec exploits three structural facts:

* :class:`~repro.vm.memory.SymbolicMemory` is paged copy-on-write — a
  page shared between forks is never mutated in place, so pages are
  content-addressable and a per-campaign **page pool** (mirroring
  :class:`~repro.parallel.wire.ChunkChannel`) lets a lease ship only
  the pages its peer has not seen: everything else travels as a
  16-byte digest reference.
* ``constraints`` is **append-only along the lineage tree** — a state's
  list extends its fork ancestors'. Each endpoint keeps a per-peer
  **base registry** (lineage → last-shipped constraint list, grown
  symmetrically on send and receive, so both sides agree without a
  handshake); a ship names its nearest registered ancestor and carries
  only ``constraints[k:]``, where ``k`` is the verified identity-prefix
  length (guarded by an 8-byte checksum over canonical expression
  hashes — a registry mismatch fails loudly, it cannot corrupt
  verdicts).
* BitVec nodes are hash-consed — shared DAG nodes are *identical*
  objects. A per-peer, per-direction **expression table** assigns each
  node a u32 id the first time it crosses to a peer; constraint
  suffixes and symbolic registers then serialize new nodes once
  (topologically, opcode + width + arg ids) and repeats as ids.

Registers, pc and flags travel as a small fixed struct. Everything is
deterministic: both directions of every peer conversation see messages
in a single total order (one batch in flight per worker), so sender and
receiver tables stay in lock-step without acknowledgements.

**Fallback rules.** ``KIND_FULL`` records (a plain pickle) are emitted
when delta encoding is disabled (``--no-delta-state``), and by the
recovery ladder after a worker respawn (the fresh incarnation's
registry is cold; see ``ParallelAnalysisEngine._readdress``). Full
records still warm both registries symmetrically, so the conversation
resumes delta-encoding immediately. A delta record that references an
unknown page or base is a protocol violation and raises
:class:`~repro.errors.SnapshotIntegrityError` — decode never guesses.

Page bodies returned by :meth:`StateWire.encode_state` are routed by
the envelope layer through :meth:`Transport.place_chunks`, so large
pages ride the shared-memory arena exactly like hardware snapshot
chunks — this is what populates the coordinator→worker shm lane.
"""

from __future__ import annotations

import pickle
import struct
from collections import OrderedDict, deque
from dataclasses import dataclass
from hashlib import blake2b
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import SnapshotIntegrityError
from repro.solver import expr as E
from repro.vm.memory import SymbolicMemory
from repro.vm.state import TRACE_DEPTH, ExecState

#: State-record kinds (the u8 tag the envelope layer writes).
KIND_NONE = 0    # no state payload (root lease)
KIND_FULL = 1    # pickle.dumps(ExecState) — self-contained fallback
KIND_DELTA = 2   # packed delta record + content-addressed page bodies

_PICKLE = pickle.HIGHEST_PROTOCOL

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
#: Fixed numeric header: pc, state_id, parent_id, steps, depth,
#: fork_count, irq_return_pc, mem_size, code_limit, flags.
_HEADER = struct.Struct("<IQQQIIIIIB")

_FLAG_IRQ_ENABLED = 1
_FLAG_IN_IRQ = 2
_FLAG_CODE_CLEAN = 4

#: Opcode table for the expression wire. Append-only — the numeric
#: codes are part of the (per-run, both-ends-same-version) protocol.
_OPS: Tuple[str, ...] = (
    E.CONST, E.VAR, E.ADD, E.SUB, E.MUL, E.UDIV, E.UREM, E.AND, E.OR,
    E.XOR, E.NOT, E.NEG, E.SHL, E.LSHR, E.ASHR, E.CONCAT, E.EXTRACT,
    E.ZEXT, E.SEXT, E.EQ, E.ULT, E.ULE, E.SLT, E.SLE, E.ITE)
_OP_CODE: Dict[str, int] = {op: i for i, op in enumerate(_OPS)}


@dataclass
class StateWireStats:
    """Per-endpoint software-state transfer accounting (summed over
    peers; mergeable across processes like :class:`WireStats`)."""

    states_sent: int = 0
    states_received: int = 0
    #: States shipped as self-contained pickles (fallback path).
    full_states: int = 0
    #: States shipped as delta records.
    delta_states: int = 0
    #: Encoded bytes by kind — the before/after of this codec.
    state_bytes_full: int = 0
    state_bytes_delta: int = 0
    #: Memory pages shipped as bodies vs. resolved by reference.
    pages_shipped: int = 0
    pages_referenced: int = 0
    page_bytes_shipped: int = 0
    #: Constraint counts: total across shipped states vs. suffix
    #: entries actually serialized (the rest travelled as a base ref).
    constraints_total: int = 0
    constraints_suffix: int = 0
    #: Expression nodes newly serialized vs. repeated as table ids.
    expr_nodes_sent: int = 0
    expr_nodes_reused: int = 0
    #: Page-pool entries dropped under the LRU cap.
    page_evictions: int = 0

    def merge(self, other: "StateWireStats") -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))

    @property
    def delta_ratio(self) -> float:
        """Mean full-pickle bytes over mean delta bytes per state
        (≥ 1 when the codec wins). Finite for JSON artifacts."""
        if not self.delta_states or not self.state_bytes_delta:
            return 1.0
        mean_delta = self.state_bytes_delta / self.delta_states
        if not self.full_states:
            return 1.0
        mean_full = self.state_bytes_full / self.full_states
        return mean_full / mean_delta

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            f: getattr(self, f) for f in self.__dataclass_fields__}
        out["delta_ratio"] = round(self.delta_ratio, 3)
        return out


class _PeerCtx:
    """One peer conversation's registries (per direction where order
    matters: the expression tables count nodes in message order)."""

    __slots__ = ("known_pages", "bases", "expr_out", "expr_in")

    def __init__(self) -> None:
        #: Page digests this peer can resolve (grown on send + receive).
        self.known_pages: Set[str] = set()
        #: lineage → last constraint list that crossed this boundary
        #: (either direction — both ends register the same events in
        #: the same order). Entries are O(pointer-list); unbounded per
        #: campaign by design: a campaign's lineage count is its path
        #: count, and each entry shares its BitVec nodes with the
        #: states themselves.
        self.bases: Dict[Tuple[int, ...], List[E.BitVec]] = {}
        #: Nodes we have serialized *to* this peer, → their table id.
        self.expr_out: Dict[E.BitVec, int] = {}
        #: Nodes received *from* this peer, indexed by table id.
        self.expr_in: List[E.BitVec] = []


class StateWire:
    """One endpoint's software-state codec for all its peers."""

    #: Page-pool LRU bound. Entries are live page lists (256 slots);
    #: parked states keep their own references, so eviction only costs
    #: a re-ship after the piggybacked notice round-trips.
    PAGE_POOL_CAP = 8192
    #: Page-digest cache bound (id(page) → digest; holds the page
    #: alive so ids cannot be recycled under it).
    DIGEST_CACHE_CAP = 16384
    #: Canonical expression-hash cache bound.
    EXPR_HASH_CACHE_CAP = 65536

    def __init__(self, delta: bool = True,
                 pool_cap: int = PAGE_POOL_CAP) -> None:
        #: When False every state ships as ``KIND_FULL`` (the
        #: ``--no-delta-state`` baseline the benchmarks compare against).
        self.delta = delta
        self.pool_cap = pool_cap
        self.pool: "OrderedDict[str, list]" = OrderedDict()
        self.peers: Dict[object, _PeerCtx] = {}
        self.stats = StateWireStats()
        self._evict_notices: Dict[object, Set[str]] = {}
        self._page_digests: "OrderedDict[int, Tuple[list, str]]" = \
            OrderedDict()
        self._expr_hashes: Dict[int, Tuple[E.BitVec, bytes]] = {}

    def _ctx(self, peer: object) -> _PeerCtx:
        ctx = self.peers.get(peer)
        if ctx is None:
            ctx = self.peers[peer] = _PeerCtx()
        return ctx

    # -- canonical content hashes -------------------------------------------

    def _expr_hash(self, node: E.BitVec) -> bytes:
        """Canonical 8-byte content hash of an expression DAG node —
        deterministic across processes (unlike ``pickle.dumps``, whose
        memo layout depends on object history), so page digests and
        base checksums computed by different endpoints always agree."""
        cache = self._expr_hashes
        hit = cache.get(id(node))
        if hit is not None:
            return hit[1]
        if len(cache) > self.EXPR_HASH_CACHE_CAP:
            cache.clear()
        stack = [node]
        while stack:
            n = stack.pop()
            if id(n) in cache:
                continue
            missing = [a for a in n.args if id(a) not in cache]
            if missing:
                stack.append(n)
                stack.extend(missing)
                continue
            h = blake2b(digest_size=8)
            h.update(n.op.encode("ascii"))
            h.update(_U32.pack(n.width))
            if n.value is not None:
                h.update(b"v")
                h.update(n.value.to_bytes(
                    (n.value.bit_length() + 7) // 8 or 1, "little"))
            if n.name is not None:
                h.update(b"n" + n.name.encode("utf-8"))
            for a in n.args:
                h.update(cache[id(a)][1])
            cache[id(n)] = (n, h.digest())
        return cache[id(node)][1]

    def _page_digest(self, page: list) -> str:
        """Content digest of one memory page (hex, 32 chars). Cached by
        object identity: a page list reachable from two holders is
        never mutated in place (COW), and the cache keeps the list
        alive so its id cannot be recycled."""
        cache = self._page_digests
        hit = cache.get(id(page))
        if hit is not None:
            cache.move_to_end(id(page))
            return hit[1]
        h = blake2b(digest_size=16)
        if all(type(v) is int for v in page):
            h.update(b"i")
            h.update(bytes(page))
        else:
            h.update(b"s")
            for v in page:
                if isinstance(v, int):
                    h.update(b"\x00" + _U8.pack(v))
                else:
                    h.update(b"\x01" + self._expr_hash(v))
        digest = h.hexdigest()
        cache[id(page)] = (page, digest)
        while len(cache) > self.DIGEST_CACHE_CAP:
            cache.popitem(last=False)
        return digest

    @staticmethod
    def _page_body(page: list) -> bytes:
        """Serialized page body: raw bytes for all-concrete pages
        (the common case — firmware image, data, stack), pickle for
        pages holding symbolic bytes."""
        if all(type(v) is int for v in page):
            return b"i" + bytes(page)
        return b"s" + pickle.dumps(page, protocol=_PICKLE)

    @staticmethod
    def _decode_page(body: bytes) -> list:
        if body[:1] == b"i":
            return list(body[1:])
        return pickle.loads(body[1:])

    # -- page pool ----------------------------------------------------------

    def _admit(self, digest: str, page: list) -> None:
        if digest in self.pool:
            self.pool.move_to_end(digest)
            return
        self.pool[digest] = page
        for notices in self._evict_notices.values():
            notices.discard(digest)
        while len(self.pool) > self.pool_cap:
            old, _ = self.pool.popitem(last=False)
            self.stats.page_evictions += 1
            for peer in self.peers:
                self._evict_notices.setdefault(peer, set()).add(old)

    def take_evictions(self, peer: object) -> List[str]:
        """Drain page-eviction notices owed to *peer* (piggybacked on
        the next outgoing envelope — the peer must stop sending these
        digests by reference)."""
        notices = self._evict_notices.get(peer)
        if not notices:
            return []
        out = sorted(notices)
        notices.clear()
        return out

    def forget_remote(self, peer: object, digests: Iterable[str]) -> None:
        """*peer* reported evicting these pages from its pool: it can
        no longer resolve references to them."""
        ctx = self.peers.get(peer)
        if ctx is None:
            return
        for digest in digests:
            ctx.known_pages.discard(digest)

    def forget_peer(self, peer: object) -> None:
        """The peer's process died (respawn/degrade): its registries
        died with it."""
        self.peers.pop(peer, None)
        self._evict_notices.pop(peer, None)

    # -- ancestor selection --------------------------------------------------

    @staticmethod
    def _best_base(ctx: _PeerCtx, state: ExecState
                   ) -> Tuple[Optional[Tuple[int, ...]], int]:
        """Longest registered lineage-prefix whose constraint list is a
        verified identity-prefix of the state's. Verification by ``is``
        is exact (hash-consing makes identity structural equality), and
        necessary: a parent keeps appending constraints after forking,
        so the registry's entry for an ancestor lineage may have grown
        past the point the fork shares."""
        best_lineage: Optional[Tuple[int, ...]] = None
        best_k = 0
        cons = state.constraints
        lineage = state.lineage
        for cut in range(len(lineage), -1, -1):
            cand = ctx.bases.get(lineage[:cut])
            if not cand:
                continue
            limit = min(len(cand), len(cons))
            k = 0
            while k < limit and cand[k] is cons[k]:
                k += 1
            if k > best_k:
                best_lineage, best_k = lineage[:cut], k
            if k == len(cons):
                break
        return best_lineage, best_k

    def _base_checksum(self, base: List[E.BitVec], k: int) -> bytes:
        h = blake2b(digest_size=8)
        for c in base[:k]:
            h.update(self._expr_hash(c))
        return h.digest()

    # -- expression table ----------------------------------------------------

    def _encode_exprs(self, roots: List[E.BitVec], ctx: _PeerCtx,
                      out: List[bytes]) -> List[int]:
        """Serialize every node of *roots* not yet in the peer's table
        (topological order, new nodes get the next ids) and return the
        root ids."""
        expr_out = ctx.expr_out
        new_nodes: List[E.BitVec] = []
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n in expr_out:
                continue
            missing = [a for a in n.args if a not in expr_out]
            if missing:
                stack.append(n)
                stack.extend(missing)
                continue
            expr_out[n] = len(expr_out)
            new_nodes.append(n)
        out.append(_U32.pack(len(new_nodes)))
        for n in new_nodes:
            out.append(_U8.pack(_OP_CODE[n.op]))
            out.append(_U32.pack(n.width))
            if n.op == E.CONST:
                out.append(n.value.to_bytes((n.width + 7) // 8, "little"))
            elif n.op == E.VAR:
                name = n.name.encode("utf-8")
                out.append(_U16.pack(len(name)))
                out.append(name)
            elif n.op == E.EXTRACT:
                out.append(_U32.pack(n.value))
                out.append(_U32.pack(expr_out[n.args[0]]))
            else:
                out.append(_U8.pack(len(n.args)))
                for a in n.args:
                    out.append(_U32.pack(expr_out[a]))
        self.stats.expr_nodes_sent += len(new_nodes)
        new_set = set(new_nodes)
        self.stats.expr_nodes_reused += sum(
            1 for r in roots if r not in new_set)
        return [expr_out[r] for r in roots]

    @staticmethod
    def _decode_exprs(rd: "_Reader", ctx: _PeerCtx) -> None:
        """Mirror of :meth:`_encode_exprs`: append the peer's new nodes
        to our receive table. Reconstruction goes through ``E._intern``
        directly — the same reconstructor ``BitVec.__reduce__`` uses —
        NOT the builder functions, whose constant folding could
        re-simplify a node and break byte-identity."""
        table = ctx.expr_in
        for _ in range(rd.u32()):
            op = _OPS[rd.u8()]
            width = rd.u32()
            if op == E.CONST:
                value = int.from_bytes(rd.read((width + 7) // 8), "little")
                node = E._intern(op, width, value=value)
            elif op == E.VAR:
                node = E._intern(op, width, name=rd.read(rd.u16()).decode(
                    "utf-8"))
            elif op == E.EXTRACT:
                value = rd.u32()
                node = E._intern(op, width, (table[rd.u32()],), value=value)
            else:
                args = tuple(table[rd.u32()] for _ in range(rd.u8()))
                node = E._intern(op, width, args)
            table.append(node)

    # -- registry warming (shared by the full and delta paths) ---------------

    def _warm_from_state(self, ctx: _PeerCtx, state: ExecState) -> None:
        """Register a full-pickled state's pages and constraint list as
        if they had crossed as a delta. Called symmetrically by the
        KIND_FULL encode and decode paths, so a fallback ship still
        warms both registries and the conversation resumes
        delta-encoding immediately."""
        for page in state.memory._pages.values():
            digest = self._page_digest(page)
            self._admit(digest, page)
            ctx.known_pages.add(digest)
        ctx.bases[state.lineage] = list(state.constraints)

    # -- encode --------------------------------------------------------------

    def encode_state(self, state: ExecState, peer: object,
                     force_full: bool = False
                     ) -> Tuple[int, bytes, Dict[str, bytes]]:
        """Encode *state* for *peer*. Returns ``(kind, record,
        page_bodies)``; ``page_bodies`` maps page digests to serialized
        bodies the peer is missing (empty for ``KIND_FULL``) — the
        caller routes them through the transport's chunk plane.

        The state's ``hw_snapshot`` must already be detached (hardware
        travels separately as a :class:`SnapshotWire`)."""
        ctx = self._ctx(peer)
        self.stats.states_sent += 1
        if force_full or not self.delta:
            record = pickle.dumps(state, protocol=_PICKLE)
            self._warm_from_state(ctx, state)
            self.stats.full_states += 1
            self.stats.state_bytes_full += len(record)
            return KIND_FULL, record, {}

        mem = state.memory
        out: List[bytes] = []
        flags = ((_FLAG_IRQ_ENABLED if state.irq_enabled else 0)
                 | (_FLAG_IN_IRQ if state.in_irq else 0)
                 | (_FLAG_CODE_CLEAN if mem.code_clean else 0))
        out.append(_HEADER.pack(
            state.pc, state.state_id, state.parent_id, state.steps,
            state.depth, state.fork_count, state.irq_return_pc,
            mem.size, mem.code_limit, flags))
        rest = pickle.dumps(
            (state.status, state.irq_handler, state.halt_code, state.error,
             state.lineage, state.trace_marks, list(state.recent_pcs),
             mem.image_digest), protocol=_PICKLE)
        out.append(_U32.pack(len(rest)))
        out.append(rest)

        # Dirty pages: refs for everything the peer holds, bodies only
        # for the rest (routed through the transport chunk plane).
        bodies: Dict[str, bytes] = {}
        pages = sorted(mem._pages.items())
        out.append(_U32.pack(len(pages)))
        for page_no, page in pages:
            digest = self._page_digest(page)
            out.append(_U32.pack(page_no))
            out.append(bytes.fromhex(digest))
            if digest in ctx.known_pages:
                self.stats.pages_referenced += 1
            else:
                body = self._page_body(page)
                bodies[digest] = body
                self.stats.pages_shipped += 1
                self.stats.page_bytes_shipped += len(body)
                ctx.known_pages.add(digest)
                self._admit(digest, page)

        # Constraint suffix beyond the nearest registered ancestor.
        base_lineage, k = self._best_base(ctx, state)
        suffix = state.constraints[k:]
        sym_regs = [(i, r) for i, r in enumerate(state.regs)
                    if not isinstance(r, int)]
        root_ids = self._encode_exprs(
            list(suffix) + [r for _, r in sym_regs], ctx, out)
        suffix_ids = root_ids[:len(suffix)]
        reg_ids = root_ids[len(suffix):]
        if base_lineage is None:
            out.append(_U8.pack(0))
        else:
            out.append(_U8.pack(1))
            out.append(_U16.pack(len(base_lineage)))
            for ordinal in base_lineage:
                out.append(_U32.pack(ordinal))
            out.append(_U32.pack(k))
            out.append(self._base_checksum(ctx.bases[base_lineage], k))
        out.append(_U32.pack(len(suffix_ids)))
        for i in suffix_ids:
            out.append(_U32.pack(i))

        # Registers: u8 tag (0 = concrete u32, 1 = expr-table id).
        out.append(_U8.pack(len(state.regs)))
        reg_iter = iter(reg_ids)
        for r in state.regs:
            if isinstance(r, int):
                out.append(_U8.pack(0))
                out.append(_U32.pack(r))
            else:
                out.append(_U8.pack(1))
                out.append(_U32.pack(next(reg_iter)))

        # Register *after* ancestor selection (a state may be its own
        # best base's refresh); symmetric with decode.
        ctx.bases[state.lineage] = list(state.constraints)
        record = b"".join(out)
        self.stats.delta_states += 1
        self.stats.state_bytes_delta += (
            len(record) + sum(len(b) for b in bodies.values()))
        self.stats.constraints_total += len(state.constraints)
        self.stats.constraints_suffix += len(suffix)
        return KIND_DELTA, record, bodies

    # -- decode --------------------------------------------------------------

    def decode_state(self, kind: int, record: bytes,
                     bodies: Dict[str, bytes], peer: object) -> ExecState:
        """Rebuild an ExecState from a record (and its transport-
        resolved page bodies). Byte-identical to the encoder's input:
        ``pickle.dumps(decoded) == pickle.dumps(original)``."""
        ctx = self._ctx(peer)
        self.stats.states_received += 1
        if kind == KIND_FULL:
            state: ExecState = pickle.loads(record)
            self._warm_from_state(ctx, state)
            return state
        if kind != KIND_DELTA:
            raise SnapshotIntegrityError(
                f"unknown state record kind {kind!r}")

        rd = _Reader(record)
        (pc, state_id, parent_id, steps, depth, fork_count, irq_return_pc,
         mem_size, code_limit, flags) = _HEADER.unpack_from(record, 0)
        rd.pos = _HEADER.size
        (status, irq_handler, halt_code, error, lineage, trace_marks,
         recent_pcs, image_digest) = pickle.loads(rd.read(rd.u32()))

        mem_pages: Dict[int, list] = {}
        used_ids: Set[int] = set()
        for _ in range(rd.u32()):
            page_no = rd.u32()
            digest = rd.read(16).hex()
            body = bodies.get(digest)
            if body is not None:
                page = self._decode_page(body)
                if self._page_digest(page) != digest:
                    raise SnapshotIntegrityError(
                        f"page {page_no} body does not match its "
                        f"digest {digest}")
                self._admit(digest, page)
            else:
                page = self.pool.get(digest)
                if page is None:
                    raise SnapshotIntegrityError(
                        f"state delta references unknown page {digest} "
                        f"(page {page_no}); sender/receiver page pools "
                        f"diverged")
                self.pool.move_to_end(digest)
            ctx.known_pages.add(digest)
            if id(page) in used_ids:
                # Two page slots with equal content resolved to one
                # pool object. An executed memory never aliases its own
                # slots (COW creates fresh lists), so copy to keep the
                # decoded pickle byte-identical to the original's.
                page = list(page)
            used_ids.add(id(page))
            mem_pages[page_no] = page

        self._decode_exprs(rd, ctx)
        table = ctx.expr_in
        constraints: List[E.BitVec] = []
        if rd.u8():
            base_lineage = tuple(rd.u32() for _ in range(rd.u16()))
            k = rd.u32()
            checksum = rd.read(8)
            base = ctx.bases.get(base_lineage)
            if base is None or len(base) < k:
                raise SnapshotIntegrityError(
                    f"state delta references unknown constraint base "
                    f"{base_lineage} (k={k}); registry is cold — the "
                    f"sender should have fallen back to a full pickle")
            if self._base_checksum(base, k) != checksum:
                raise SnapshotIntegrityError(
                    f"constraint base {base_lineage}[:{k}] checksum "
                    f"mismatch; sender/receiver registries diverged")
            constraints.extend(base[:k])
        for _ in range(rd.u32()):
            constraints.append(table[rd.u32()])

        regs: List[Any] = []
        for _ in range(rd.u8()):
            tag = rd.u8()
            value = rd.u32()
            regs.append(value if tag == 0 else table[value])

        mem = SymbolicMemory.__new__(SymbolicMemory)
        mem.size = mem_size
        mem._pages = mem_pages
        mem._owned = set()
        mem.image_digest = image_digest
        mem.code_limit = code_limit
        mem.code_clean = bool(flags & _FLAG_CODE_CLEAN)

        state = ExecState(
            memory=mem, pc=pc, regs=regs, constraints=constraints,
            status=status, hw_snapshot=None,
            irq_enabled=bool(flags & _FLAG_IRQ_ENABLED),
            irq_handler=irq_handler,
            in_irq=bool(flags & _FLAG_IN_IRQ),
            irq_return_pc=irq_return_pc, state_id=state_id,
            parent_id=parent_id, depth=depth, steps=steps,
            lineage=lineage, fork_count=fork_count, halt_code=halt_code,
            error=error, trace_marks=trace_marks,
            recent_pcs=deque(recent_pcs, maxlen=TRACE_DEPTH))
        ctx.bases[lineage] = list(constraints)
        return state


class _Reader:
    """Sequential reader over a state record."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def read(self, n: int) -> bytes:
        data = self.buf[self.pos:self.pos + n]
        self.pos += n
        return data

    def u8(self) -> int:
        value, = _U8.unpack_from(self.buf, self.pos)
        self.pos += 1
        return value

    def u16(self) -> int:
        value, = _U16.unpack_from(self.buf, self.pos)
        self.pos += 2
        return value

    def u32(self) -> int:
        value, = _U32.unpack_from(self.buf, self.pos)
        self.pos += 4
        return value


__all__ = ["StateWire", "StateWireStats",
           "KIND_NONE", "KIND_FULL", "KIND_DELTA"]
