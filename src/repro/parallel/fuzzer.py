"""Input-sharded parallel fuzzing from a shared post-boot snapshot.

The serial :class:`~repro.core.fuzzer.SnapshotFuzzer` already splits
into a deterministic scheduler (mutation batches, corpus/coverage update
rule) and a hardware harness (restore boot snapshot, execute input).
This coordinator keeps the scheduler and shards the harness across the
worker pool: each worker rebuilds the target from the recipe, captures
the post-boot snapshot **once**, then restores it per input — the
HardSnap fuzzing loop, N times over.

Because every input executes from the same boot state, per-input results
are corpus-independent; merging them back **in global input order**
makes the run bit-identical to a serial run with the same ``batch_size``
(see :meth:`~repro.core.fuzzer.FuzzReport.verdict_summary`), whatever
the worker count.

Shards travel as packed ``fuzz-batch`` envelopes over the pool's
transport (shared-memory slabs by default), each worker gets one
**contiguous** slice of the batch (one envelope per worker instead of
round-robin message-per-input), and the coordinator merges **streamed**:
as each shard lands, every result whose global index is next in line
feeds the scheduler immediately, so merge work overlaps the stragglers.
The merge *order* is still the global input order — identical verdicts.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SessionConfig
from repro.core.fuzzer import CorpusScheduler, FuzzReport
from repro.errors import VmError
from repro.isa.assembler import Program
from repro.parallel.envelope import pack_fuzz_batch, unpack_fuzz_results
from repro.parallel.pool import WorkerPool
from repro.parallel.recipe import SessionRecipe
from repro.parallel.recovery import PoolRecoveryMixin
from repro.parallel.workers import unpack_edges
from repro.resilience import RetryPolicy


class ParallelFuzzer(PoolRecoveryMixin):
    """N-worker counterpart of :class:`~repro.core.fuzzer.SnapshotFuzzer`
    (snapshot reset mode only — rebooting per input is exactly what the
    snapshot runtime exists to avoid)."""

    def __init__(self, firmware: Union[str, Program],
                 peripherals: Sequence[Tuple[object, int]] = (),
                 seeds: Optional[List[bytes]] = None,
                 workers: int = 2,
                 batch_size: int = 32,
                 seed: int = 0,
                 max_steps_per_exec: int = 20_000,
                 config: Optional[SessionConfig] = None,
                 transport: str = "auto",
                 **overrides):
        if batch_size < 1:
            raise VmError(f"batch_size must be >= 1, got {batch_size}")
        self.recipe = SessionRecipe.create(
            firmware, peripherals, config=config,
            max_steps_per_exec=max_steps_per_exec, transport=transport,
            **overrides)
        self.workers = workers
        self.batch_size = batch_size
        self.scheduler = CorpusScheduler(seeds, seed)
        self.config = self.recipe.config
        self.retry_policy = self.config.retry_policy or RetryPolicy()
        self._degraded = False
        self._pool: Optional[WorkerPool] = None

    # -- pool lifecycle -----------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.recipe, self.workers)
        return self._pool

    @property
    def pool_stats(self):
        return self.pool.stats

    def warm(self) -> None:
        self.pool.warm("fuzz")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelFuzzer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def boot_digests(self) -> Dict[int, Dict[str, str]]:
        """Each worker's post-boot snapshot chunk digests — they must all
        be identical (every worker fuzzes the same machine)."""
        pool = self.pool
        pool.broadcast("boot-digests", None)
        out: Dict[int, Dict[str, str]] = {}
        for _ in range(self.workers):
            _, worker_id, digests = pool.next_result(timeout=120)
            out[worker_id] = digests
        return out

    # -- main loop ----------------------------------------------------------

    def _pack_items(self, payload: Dict[str, Any],
                    worker_id: int) -> bytes:
        """``pack`` hook for the pool: shard dict → envelope bytes, with
        shm acks owed to this worker piggybacked at pack time (a re-pack
        ships fresh bookkeeping)."""
        return pack_fuzz_batch(
            payload["items"],
            acks=self.pool.transport.take_acks(worker_id))

    def _decode_shard(self, worker_id: int, data) -> Dict[str, Any]:
        """One arrived shard → the structured result dict. Packed bytes
        come from real workers; the degraded InlinePool delivers the
        structured form directly. The piggybacked shm acks are fed back
        to the transport so the coordinator arena's slabs drain — fuzz
        batches routinely clear the blob floor, so dropping acks would
        leak a slab per batch for the whole campaign."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            transport = self.pool.transport
            t0 = time.perf_counter()
            acks, _evictions, worker_enc, worker_dec, res = \
                unpack_fuzz_results(data)
            stats = transport.stats
            stats.decode_s += time.perf_counter() - t0
            stats.worker_encode_s += worker_enc
            stats.worker_decode_s += worker_dec
            transport.absorb_acks(worker_id, acks)
            return res
        return data

    def run(self, executions: int = 200) -> FuzzReport:
        """Fuzz for *executions* inputs across the pool.

        Equivalent to ``SnapshotFuzzer.run(executions,
        batch_size=self.batch_size)`` with the same seeds and seed: the
        batch is generated up front from the shared scheduler, sharded
        contiguously across workers, and merged back in input order —
        streamed, so early shards feed the scheduler while late shards
        are still executing.
        """
        report = FuzzReport()
        pool = self.pool
        resilience0 = pool.stats.resilience.as_dict()
        start = time.perf_counter()
        done = 0
        while done < executions:
            batch = self.scheduler.next_batch(
                min(max(1, self.batch_size), executions - done))
            indexed = list(enumerate(batch))
            per = -(-len(indexed) // self.workers)  # ceil
            shards = 0
            for worker_id in range(self.workers):
                items = indexed[worker_id * per:(worker_id + 1) * per]
                if not items:
                    continue
                self.pool.submit(worker_id, "fuzz-batch",
                                 {"items": items}, pack=self._pack_items)
                shards += 1
            pool.stats.batches += 1
            merged: Dict[int, Tuple[bytes, bytes, Optional[str], int]] = {}
            next_i = 0
            arrived = 0
            while arrived < shards:
                results = [self._await_result()]
                results.extend(self.pool.drain_results())
                for _, worker_id, data in results:
                    arrived += 1
                    res = self._decode_shard(worker_id, data)
                    report.resets += res["resets"]
                    report.modelled_time_s += res["modelled_dt"]
                    report.resilience.merge(res["resilience"])
                    for index, data_, edges, crash, pc in res["results"]:
                        merged[index] = (data_, edges, crash, pc)
                # Streaming merge: consume the longest in-order prefix
                # available so far (scheduler order == input order).
                while next_i in merged:
                    data_, edges, crash, pc = merged.pop(next_i)
                    self.scheduler.merge(report, data_,
                                         unpack_edges(edges), crash, pc,
                                         done + next_i)
                    next_i += 1
            done += len(batch)
        self.scheduler.finalize(report)
        report.host_time_s = time.perf_counter() - start
        pool.stats.host_time_s += report.host_time_s
        report.resilience.merge(pool.stats.resilience.delta(resilience0))
        return report
