#!/usr/bin/env python3
"""Hunt the planted vulnerability suite and show HardSnap's diagnosis
payload: for every finding, the concrete input witness, the control-flow
tail, and the complete hardware state at the detection point.

Run:  python examples/vuln_hunt.py
"""

import _bootstrap  # noqa: F401  — src/ fallback for fresh checkouts
from repro import HardSnapSession
from repro.firmware import (AES_BASE, TIMER_BASE, UART_BASE, WDT_BASE,
                            vuln_buffer_overflow, vuln_irq_race,
                            vuln_peripheral_misuse, vuln_wdt_starvation)
from repro.isa.disassembler import disassemble_word
from repro.peripherals import catalog

SUITE = [
    ("driver buffer overflow (attacker-controlled length)",
     vuln_buffer_overflow(), [(catalog.UART, UART_BASE)], "uart"),
    ("peripheral misuse (result consumed while AES busy)",
     vuln_peripheral_misuse(), [(catalog.AES128, AES_BASE)], "aes128"),
    ("interrupt race (lost update on shared counter)",
     vuln_irq_race(), [(catalog.TIMER, TIMER_BASE)], "timer"),
    ("watchdog starvation (data-dependent slow path)",
     vuln_wdt_starvation(), [(catalog.WDT, WDT_BASE)], "wdt"),
]

INTERESTING_NETS = {
    "uart": ["tx_busy", "rx_count", "bauddiv"],
    "aes128": ["busy", "done", "round"],
    "timer": ["value", "expired", "ctrl"],
    "wdt": ["barked", "locked", "value"],
}


def main() -> None:
    for title, firmware, peripherals, pname in SUITE:
        print("=" * 72)
        print(f"hunting: {title}")
        session = HardSnapSession(firmware, peripherals,
                                  scan_mode="functional")
        report = session.run(max_instructions=500_000)
        print(f"  {report.summary()}")
        if not report.bugs:
            print("  NO FINDINGS")
            continue
        bug = report.bugs[0]
        print(f"  first finding: {bug.summary()}")
        print(f"  witness input: {bug.test_case}")
        # Control-flow tail, disassembled from the program image.
        print("  control flow before detection:")
        for pc in list(bug.backtrace)[-5:]:
            word = session.program.words.get(pc)
            text = disassemble_word(word, pc) if word is not None else "?"
            print(f"    {pc:#06x}: {text}")
        # The hardware side of the combined state S.
        hw = bug.hw_snapshot.states[pname]["nets"]
        shown = {k: hw[k] for k in INTERESTING_NETS[pname] if k in hw}
        print(f"  peripheral state at detection ({pname}): {shown}")
        safe = len(report.halted_paths)
        print(f"  paths that pass the property: {safe}")
        print()


if __name__ == "__main__":
    main()
