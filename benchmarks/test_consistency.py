"""E4 — Fig. 1: HW/SW consistency under concurrent path exploration.

The motivation example made quantitative. Firmware with two paths (REQ A
/ REQ B) programs the same timer peripheral with different task lengths
and waits for its interrupt; each path asserts the peripheral actually
ran *its* task. Explored concurrently (round-robin), the three regimes
behave exactly as Fig. 1 depicts:

* naive-and-consistent: correct verdicts, many reboots, huge cost,
* naive-and-inconsistent: REQ A's task is clobbered by REQ B — a lost
  interrupt or a wrong LOAD value; verdicts diverge from ground truth,
* HardSnap: correct verdicts at a fraction of the consistent cost.
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import HardSnapSession
from repro.firmware import TIMER_BASE, fig1_two_paths
from repro.peripherals import catalog

TIMER = [(catalog.TIMER, TIMER_BASE)]
STRATEGIES = ("hardsnap", "naive-consistent", "naive-inconsistent")


def _run(strategy):
    session = HardSnapSession(fig1_two_paths(), TIMER, strategy=strategy,
                              searcher="round-robin",
                              scan_mode="functional")
    return session.run(max_instructions=30_000)


def test_fig1_consistency(benchmark):
    reports = benchmark.pedantic(
        lambda: {s: _run(s) for s in STRATEGIES}, rounds=1, iterations=1)

    ground_truth = {0xA: 1, 0xB: 1}  # both paths complete, correctly
    rows = []
    for strategy in STRATEGIES:
        r = reports[strategy]
        verdicts = {hex(k): v for k, v in r.halt_codes().items()}
        correct = r.halt_codes() == ground_truth and not r.bugs
        rows.append([
            strategy,
            str(verdicts),
            len(r.bugs),
            "yes" if correct else "NO",
            r.snapshot_saves + r.snapshot_restores,
            r.reboots,
            format_si_time(r.modelled_time_s),
        ])
    emit("consistency", format_table(
        ["strategy", "path verdicts", "false alarms", "matches ground truth",
         "snapshot ops", "reboots", "modelled time"],
        rows, title="E4 (Fig. 1): consistency of concurrent HW/SW co-testing"))

    hs, nc, ni = (reports[s] for s in STRATEGIES)
    # HardSnap and the reboot baseline agree on the ground truth.
    assert hs.halt_codes() == ground_truth and not hs.bugs
    assert nc.halt_codes() == ground_truth and not nc.bugs
    # The inconsistent regime breaks: a path never completes (lost IRQ)
    # or completes with a wrong verdict (false positive/negative).
    assert ni.halt_codes() != ground_truth or ni.bugs
    # Cost ordering: hardsnap << naive-consistent.
    assert hs.modelled_time_s * 100 < nc.modelled_time_s
    assert nc.reboots > 0 and hs.reboots == 0
