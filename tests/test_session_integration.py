"""End-to-end integration tests: the full HardSnap stack on the firmware
corpus (the paper's experiment set in miniature)."""

import pytest

from repro import HardSnapSession
from repro.core.testbench import HwTestbench, generate_test_vectors
from repro.errors import TargetError
from repro.firmware import (AES_BASE, TIMER_BASE, UART_BASE, dispatcher,
                            fig1_two_paths, init_heavy, uart_echo,
                            vuln_buffer_overflow, vuln_irq_race,
                            vuln_peripheral_misuse)
from repro.peripherals import catalog, timer
from repro.targets import FpgaTarget, SimulatorTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]


class TestVulnerabilitySuite:
    """Experiment E3: every planted bug is found with full HW/SW context."""

    def test_buffer_overflow_found_with_witness(self):
        session = HardSnapSession(vuln_buffer_overflow(),
                                  [(catalog.UART, UART_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=500_000)
        bugs = [b for b in report.bugs if b.kind == "assertion-failure"]
        assert bugs
        # Every witness length overflows the 16-byte buffer.
        for bug in bugs:
            length = list(bug.test_case.values())[0] & 0x3F
            assert length > 16
        # Lengths <= 16 pass.
        ok_lengths = {list(p.test_case.values())[0] & 0x3F
                      for p in report.halted_paths if p.test_case}
        assert ok_lengths and all(l <= 16 for l in ok_lengths)

    def test_peripheral_misuse_found(self):
        session = HardSnapSession(vuln_peripheral_misuse(),
                                  [(catalog.AES128, AES_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=500_000)
        bugs = [b for b in report.bugs if b.kind == "assertion-failure"]
        assert bugs
        # The bug fires only for too-short waits; long waits pass.
        assert report.halted_paths

    def test_irq_race_window_isolated(self):
        session = HardSnapSession(vuln_irq_race(), TIMER,
                                  scan_mode="functional")
        report = session.run(max_instructions=500_000)
        assert any(b.kind == "assertion-failure" for b in report.bugs)
        assert report.halted_paths  # non-racy interleavings pass

    def test_bug_carries_hardware_snapshot(self):
        """The paper's root-cause story: a bug report includes the
        complete peripheral state at detection."""
        session = HardSnapSession(vuln_peripheral_misuse(),
                                  [(catalog.AES128, AES_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=500_000, stop_after_bugs=1)
        bug = report.bugs[0]
        assert bug.hw_snapshot is not None
        hw = bug.hw_snapshot.states["aes128"]["nets"]
        assert "busy" in hw  # peripheral internals visible in the report
        assert bug.backtrace


class TestWorkloads:
    @pytest.mark.parametrize("n", [2, 8, 16])
    def test_dispatcher_scales(self, n):
        session = HardSnapSession(dispatcher(n, work_cycles=6), TIMER,
                                  scan_mode="functional")
        report = session.run(max_instructions=400_000)
        assert len(report.halt_codes()) == n

    def test_init_heavy_assembles_and_runs(self):
        session = HardSnapSession(init_heavy(init_writes=30, n_paths=3),
                                  [(catalog.UART, UART_BASE),
                                   (catalog.TIMER, TIMER_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=400_000)
        assert sorted(report.halt_codes()) == [0x200, 0x201, 0x202]

    def test_uart_echo_loopback_via_vm(self):
        """Firmware drives a real serial loopback through the VM: the
        UART instance's tx pin is wired to its rx input by the target's
        environment (poked each engine poll via a tiny adapter)."""
        target = FpgaTarget(scan_mode="functional")
        instance = target.add_peripheral(catalog.UART, UART_BASE)
        target.reset()
        # Loop tx back into rx at simulation level so every advance —
        # including cycles consumed inside bus transactions — sees it.
        sim = instance.sim
        original_step = sim.step
        def looped_step(cycles=1):
            for _ in range(cycles):
                sim.poke("rx", sim.peek("tx"))
                original_step(1)
        sim.step = looped_step
        session = HardSnapSession(uart_echo(count=2),
                                  [], target=target)
        report = session.run(max_instructions=400_000)
        assert not report.bugs
        assert [p.halt_code for p in report.halted_paths] == [2]


class TestMultiPeripheral:
    def test_two_peripherals_one_firmware(self):
        src = f"""
        .equ TIMER, 0x{TIMER_BASE:x}
        .equ UART, 0x{UART_BASE:x}
        start:
            movi r1, TIMER
            movi r2, UART
            movi r3, 4
            sw r3, 16(r2)       ; uart bauddiv
            movi r3, 10
            sw r3, 4(r1)        ; timer load
            movi r3, 1
            sw r3, 0(r1)        ; timer en
        poll:
            lw r4, 12(r1)
            beq r4, r0, poll
            movi r5, 0x55
            sw r5, 0(r2)        ; uart tx
            lw r6, 8(r2)        ; uart status
            andi r6, r6, 1      ; tx busy
            assert r6
            halt r0
        """
        session = HardSnapSession(
            src, [(catalog.TIMER, TIMER_BASE), (catalog.UART, UART_BASE)],
            scan_mode="functional")
        report = session.run(max_instructions=100_000)
        assert not report.bugs
        assert len(report.halted_paths) == 1


class TestTestbench:
    def test_concrete_bench_drives_peripheral(self):
        target = SimulatorTarget()
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        bench = HwTestbench(target, "timer")
        bench.write("LOAD", 20)
        bench.write("CTRL", timer.CTRL_EN | timer.CTRL_IRQ_EN)
        assert bench.wait_for_irq(timeout_cycles=100)
        assert bench.read("VALUE") == 0
        bench.write("STATUS", 1)
        assert not target.instances["timer"].irq()

    def test_bench_property_checking(self):
        target = SimulatorTarget()
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        bench = HwTestbench(target, "timer")
        bench.add_property(
            "value never exceeds load",
            lambda tb: tb.target.peek("timer", "value")
            <= tb.target.peek("timer", "load"))
        bench.write("LOAD", 50)
        bench.write("CTRL", timer.CTRL_EN)
        bench.step(60)
        assert bench.ok, bench.failures

    def test_bench_property_failure_recorded(self):
        target = SimulatorTarget()
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        bench = HwTestbench(target, "timer")
        bench.add_property("always false", lambda tb: False)
        bench.step(1)
        assert not bench.ok
        assert bench.failures[0].name == "always false"

    def test_unknown_register_rejected(self):
        target = SimulatorTarget()
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        bench = HwTestbench(target, "timer")
        with pytest.raises(TargetError):
            bench.read("BOGUS")

    def test_wait_until_polls_register(self):
        target = SimulatorTarget()
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        bench = HwTestbench(target, "timer")
        bench.write("LOAD", 5)
        bench.write("CTRL", timer.CTRL_EN)
        assert bench.wait_until("STATUS", 1)

    def test_symbolic_test_vector_generation(self):
        """§III: software-generated test vectors for hardware: each
        completed path yields a concrete stimulus."""
        vectors, report = generate_test_vectors(
            dispatcher(4, work_cycles=6), TIMER,
            scan_mode="functional")
        assert len(vectors) == 4
        commands = sorted(list(v.assignments.values())[0] % 4
                          for v in vectors)
        assert commands == [0, 1, 2, 3]


class TestAnalysisHelpers:
    def test_coverage_report(self):
        from repro.analysis import coverage_report
        session = HardSnapSession(dispatcher(2, work_cycles=6), TIMER,
                                  scan_mode="functional")
        session.run(max_instructions=100_000)
        report = coverage_report(session.program, session.executor.coverage)
        assert report.covered_count > 10
        assert 0 < report.percent <= 100

    def test_table_rendering(self):
        from repro.analysis import format_table
        text = format_table(["name", "value"], [["a", 1], ["bb", 2.5]],
                            title="T")
        assert "name" in text and "bb" in text

    def test_table1_regeneration(self):
        from repro.analysis.table1 import render, APPROACHES
        text = render()
        assert "HardSnap" in text and "Inception" in text
        hardsnap = [a for a in APPROACHES if a.name == "HardSnap"][0]
        assert hardsnap.symbolic == "yes"
        assert hardsnap.consistency == "yes"

    def test_table1_claims_importable(self):
        """Every capability the HardSnap column claims maps to a real,
        importable artefact in this library."""
        import importlib
        from repro.analysis.table1 import hardsnap_capability_predicates
        for claim, path in hardsnap_capability_predicates().items():
            parts = path.split(".")
            for split in range(len(parts), 0, -1):
                try:
                    mod = importlib.import_module(".".join(parts[:split]))
                except ImportError:
                    continue
                obj = mod
                for attr in parts[split:]:
                    obj = getattr(obj, attr)
                break
            else:
                pytest.fail(f"claim {claim!r}: cannot resolve {path!r}")
