"""Recovery policy knobs.

One frozen dataclass holding every bound the recovery machinery obeys:
link retransmit counts and backoff shape, result deadlines and re-issue
limits, the worker respawn cap, and whether an exhausted pool degrades
to in-process execution. Backoff latencies are *modelled* time — they
are charged to the target's :class:`~repro.bus.transport.ModelledTimer`
so Table-1/E-series numbers stay honest under faults.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds for every recovery loop. Plain frozen data — travels in
    :class:`~repro.core.config.SessionConfig` alongside the fault plan."""

    #: Retransmits allowed per link operation (scan shift, MMIO access,
    #: cross-target transfer) before the operation raises.
    max_link_retries: int = 4
    #: Exponential backoff between retransmits, charged as modelled time:
    #: ``min(cap, base * factor**attempt)``.
    backoff_base_s: float = 1e-6
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1e-3
    #: Modelled cost of re-establishing a dropped link (health-check
    #: reconnect).
    reconnect_cost_s: float = 1e-3
    #: Host-time deadline the coordinator waits for any worker result
    #: before re-issuing in-flight work (only armed when a fault plan is
    #: active — fault-free runs block indefinitely, as before).
    result_deadline_s: float = 60.0
    #: Re-issues allowed per job before the run gives up on it.
    max_reissues: int = 3
    #: Worker respawns allowed per pool before it is declared exhausted.
    respawn_cap: int = 4
    #: When the pool is exhausted: fall back to in-process execution
    #: (True) or raise (False).
    degrade_to_serial: bool = True

    def backoff_s(self, attempt: int) -> float:
        """Modelled backoff before retransmit *attempt* (0-based)."""
        return min(self.backoff_cap_s,
                   self.backoff_base_s * self.backoff_factor ** attempt)
