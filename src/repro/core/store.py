"""Content-addressed snapshot store with delta encoding.

HardSnap's first evaluation question — "How long does it take to
save/restore a hardware state?" — is dominated, for snapshot-heavy
workloads (DSE fork trees, fuzzing loops), not by one save but by
*thousands* of near-identical saves: sibling states differ in a handful
of registers. Deep-copying the full canonical state per save makes a
snapshot cost O(design) in both bits and host time no matter how small
the actual change.

This module is the copy-on-write layer under the snapshot controller:

* **Chunks** — each peripheral instance's canonical state dict (the
  :meth:`~repro.sim.base.BaseSimulation.save_state` form) is hashed into
  an immutable, content-addressed chunk. Two snapshots whose ``uart``
  states are bit-identical share one chunk, whichever target or method
  produced them.
* **Delta records** — a snapshot is a mapping *instance → chunk digest*
  plus a parent pointer. A child snapshot records only the instances
  whose digest differs from its parent's; unchanged instances are
  inherited through the chain. Saving a child therefore stores
  O(changed registers) bits.
* **Flatten threshold** — :meth:`SnapshotStore.resolve` reassembles a
  full image by walking the delta chain root-ward. To keep restores
  O(1)-ish, every ``flatten_threshold`` deltas the store materializes a
  *full* record (all instances listed explicitly — which costs no extra
  chunk storage, since chunks are shared) and the chain depth resets.

The store holds *storage*, not *mechanism*: targets still pay their
method's modelled cost (a scan chain shifts its full length regardless
of how little changed), while the simulator's CRIU model prices
incremental dumps by dirty state only. See ``docs/SNAPSHOT_STORE.md``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional

from repro.errors import SnapshotError

#: Materialize a full record every N delta records (chain depth bound).
DEFAULT_FLATTEN_THRESHOLD = 8


def chunk_digest(state: Mapping) -> str:
    """Content address of one canonical per-instance state dict.

    The canonical form is JSON-representable by construction (ints,
    lists, dicts); sorted-key serialisation makes the digest independent
    of dict insertion order, so the same hardware state always hashes
    identically whichever target captured it. The ``cycle`` counter is
    excluded: peripherals advance in lockstep, so every instance's cycle
    moves on any activity — folding it into the digest would defeat
    dedup for instances whose *registers* never changed. Cycles are
    round-tripped exactly via per-record metadata instead.
    """
    body = {k: v for k, v in state.items() if k != "cycle"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("ascii"), digest_size=16).hexdigest()


def _split(state: Mapping) -> tuple:
    """(body-without-cycle, cycle) of one canonical state dict."""
    return ({k: v for k, v in state.items() if k != "cycle"},
            int(state.get("cycle", 0)))


@dataclass(frozen=True)
class Chunk:
    """One immutable, content-addressed per-instance state image."""

    digest: str
    payload: dict  # canonical state body (no cycle); MUST never be mutated
    bits: int


@dataclass(frozen=True)
class SnapshotRecord:
    """One stored snapshot: a (possibly partial) instance → chunk map.

    ``full`` records list every instance; delta records list only the
    instances that changed relative to ``parent_id`` (different body
    digest *or* different cycle counter) and inherit the rest through
    the chain. ``cycle_map`` carries each listed instance's cycle
    counter — O(instances) words of record metadata, like the parent
    pointer and the instance names, not counted in ``stored_bits``
    (which tracks state *payload* bits).
    """

    snapshot_id: int
    parent_id: Optional[int]
    chunk_map: Dict[str, str]
    cycle_map: Dict[str, int]
    full: bool
    depth: int
    method: str
    logical_bits: int
    stored_bits: int

    @property
    def delta_instances(self) -> int:
        return len(self.chunk_map)


@dataclass
class StoreStats:
    """Dedup accounting across the store's lifetime."""

    snapshots: int = 0
    chunks: int = 0
    chunk_hits: int = 0
    chunk_misses: int = 0
    capture_skips: int = 0
    logical_bits: int = 0
    stored_bits: int = 0
    flattens: int = 0
    max_chain_depth: int = 0
    resolves: int = 0

    @property
    def dedup_hit_rate(self) -> float:
        """Fraction of instance captures that deduplicated to an
        existing chunk (including version-tracked capture skips)."""
        total = self.chunk_hits + self.chunk_misses + self.capture_skips
        if total == 0:
            return 0.0
        return (self.chunk_hits + self.capture_skips) / total

    @property
    def compression_ratio(self) -> float:
        """Logical (naive full-image) bits over actually stored bits."""
        if self.stored_bits == 0:
            return 1.0 if self.logical_bits == 0 else float("inf")
        return self.logical_bits / self.stored_bits


class SnapshotStore:
    """Content-addressed, delta-encoded snapshot storage."""

    def __init__(self, flatten_threshold: int = DEFAULT_FLATTEN_THRESHOLD):
        if flatten_threshold < 1:
            raise SnapshotError("flatten_threshold must be >= 1")
        self.flatten_threshold = flatten_threshold
        self._chunks: Dict[str, Chunk] = {}
        self._chunk_refs: Dict[str, int] = {}
        self._records: Dict[int, SnapshotRecord] = {}
        self._children: Dict[int, int] = {}  # record id -> live child count
        self._ids = itertools.count(1)
        self.stats = StoreStats()

    def next_id(self) -> int:
        """Allocate a fresh store id. Store ids are their own keyspace —
        distinct from mechanism-level ids like FPGA SRAM slots — so
        several controllers can share one store without collisions."""
        return next(self._ids)

    # -- save path ----------------------------------------------------------

    def put(self, snapshot_id: int, states: Mapping[str, dict],
            bits_of: Mapping[str, int],
            parent_id: Optional[int] = None,
            method: str = "direct",
            unchanged: Iterable[str] = ()) -> SnapshotRecord:
        """Store one snapshot; returns its record.

        ``states`` maps instance name to canonical state dict;
        ``bits_of`` gives each instance's state size in bits. Instances
        listed in ``unchanged`` are trusted (via the target's state
        version tracking) to be bit-identical to the parent's image and
        reuse the parent's digest without re-hashing — the incremental
        capture fast path. Everything else is hashed and deduplicated
        against the chunk pool.
        """
        if snapshot_id in self._records:
            raise SnapshotError(f"duplicate snapshot id {snapshot_id}")
        parent = self._records.get(parent_id) if parent_id is not None else None
        if parent_id is not None and parent is None:
            raise SnapshotError(f"unknown parent snapshot {parent_id}")
        if parent is not None:
            parent_digests, parent_cycles = self._resolve_maps(parent)
        else:
            parent_digests, parent_cycles = {}, {}
        skip: FrozenSet[str] = frozenset(unchanged)

        digests: Dict[str, str] = {}
        cycles: Dict[str, int] = {}
        logical_bits = 0
        stored_bits = 0
        for name, state in states.items():
            bits = int(bits_of.get(name, 0))
            logical_bits += bits
            if name in skip and name in parent_digests:
                # Version-tracked as untouched: bit-identical to the
                # parent, cycle counter included.
                digests[name] = parent_digests[name]
                cycles[name] = parent_cycles[name]
                self.stats.capture_skips += 1
                continue
            body, cycle = _split(state)
            digest = chunk_digest(state)
            digests[name] = digest
            cycles[name] = cycle
            if digest in self._chunks:
                self.stats.chunk_hits += 1
            else:
                self._chunks[digest] = Chunk(digest, body, bits)
                self._chunk_refs[digest] = 0
                self.stats.chunk_misses += 1
                self.stats.stored_bits += bits
                stored_bits += bits

        changed = {name for name, digest in digests.items()
                   if parent_digests.get(name) != digest
                   or parent_cycles.get(name) != cycles[name]}
        make_full = (parent is None
                     or set(digests) != set(parent_digests)
                     or parent.depth + 1 >= self.flatten_threshold)
        if make_full:
            chunk_map, cycle_map, depth = dict(digests), dict(cycles), 0
            if parent is not None and parent.depth + 1 >= self.flatten_threshold:
                self.stats.flattens += 1
        else:
            chunk_map = {name: digests[name] for name in changed}
            cycle_map = {name: cycles[name] for name in changed}
            depth = parent.depth + 1

        record = SnapshotRecord(
            snapshot_id=snapshot_id,
            parent_id=parent_id if not make_full else None,
            chunk_map=chunk_map, cycle_map=cycle_map,
            full=make_full, depth=depth,
            method=method, logical_bits=logical_bits,
            stored_bits=stored_bits)
        self._records[snapshot_id] = record
        for digest in chunk_map.values():
            self._chunk_refs[digest] += 1
        if record.parent_id is not None:
            self._children[record.parent_id] = \
                self._children.get(record.parent_id, 0) + 1
        self.stats.snapshots += 1
        self.stats.chunks = len(self._chunks)
        self.stats.logical_bits += logical_bits
        self.stats.max_chain_depth = max(self.stats.max_chain_depth, depth)
        return record

    # -- restore path -------------------------------------------------------

    def record(self, snapshot_id: int) -> SnapshotRecord:
        record = self._records.get(snapshot_id)
        if record is None:
            raise SnapshotError(f"unknown snapshot {snapshot_id}")
        return record

    def _resolve_maps(self, record: SnapshotRecord) -> tuple:
        """(instance → digest, instance → cycle) maps for one snapshot,
        walking the delta chain root-ward (newest entry wins)."""
        digests: Dict[str, str] = {}
        cycles: Dict[str, int] = {}
        while True:
            for name, digest in record.chunk_map.items():
                if name not in digests:
                    digests[name] = digest
                    cycles[name] = record.cycle_map[name]
            if record.full or record.parent_id is None:
                return digests, cycles
            record = self.record(record.parent_id)

    def resolve_digests(self, snapshot_id: int) -> Dict[str, str]:
        return self._resolve_maps(self.record(snapshot_id))[0]

    def resolve_refs(self, snapshot_id: int) -> "tuple[Dict[str, str], Dict[str, int]]":
        """(instance → chunk digest, instance → cycle) for one snapshot
        — the content-addressed *reference* form a snapshot travels as
        on the parallel runtime's wire (payloads ship separately, only
        to peers that lack them)."""
        return self._resolve_maps(self.record(snapshot_id))

    def has_chunk(self, digest: str) -> bool:
        return digest in self._chunks

    def resolve(self, snapshot_id: int) -> Dict[str, dict]:
        """Reassemble the full canonical image of one snapshot.

        Walks the delta chain root-ward collecting the newest chunk per
        instance; the flatten threshold bounds the walk length. The
        ``nets``/``memories`` sub-dicts of the returned states are the
        store's shared immutable chunks — callers must not mutate them.
        """
        self.stats.resolves += 1
        digests, cycles = self._resolve_maps(self.record(snapshot_id))
        return {name: {"cycle": cycles[name],
                       **self._chunks[digest].payload}
                for name, digest in digests.items()}

    def chunk(self, digest: str) -> Chunk:
        chunk = self._chunks.get(digest)
        if chunk is None:
            raise SnapshotError(f"unknown chunk {digest!r}")
        return chunk

    def chain_depth(self, snapshot_id: int) -> int:
        return self.record(snapshot_id).depth

    def __contains__(self, snapshot_id: int) -> bool:
        return snapshot_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    # -- garbage collection -------------------------------------------------

    def forget(self, snapshot_id: int) -> None:
        """Drop one snapshot record and free now-unreferenced chunks.

        Only leaf records (no delta children inheriting through them)
        can be forgotten; forgetting an interior record would break its
        descendants' chains.
        """
        record = self.record(snapshot_id)
        if self._children.get(snapshot_id, 0) > 0:
            raise SnapshotError(
                f"snapshot {snapshot_id} has delta children; "
                f"forget them first")
        del self._records[snapshot_id]
        if record.parent_id is not None:
            self._children[record.parent_id] -= 1
        for digest in record.chunk_map.values():
            self._chunk_refs[digest] -= 1
            if self._chunk_refs[digest] == 0:
                freed = self._chunks.pop(digest)
                del self._chunk_refs[digest]
                self.stats.stored_bits -= freed.bits
        self.stats.chunks = len(self._chunks)


# ---------------------------------------------------------------------------
# Persistent blob storage (the campaign journal's payload layer)
# ---------------------------------------------------------------------------

def blob_digest(data: bytes) -> str:
    """Content address of one opaque blob (same blake2b-16 keyspace as
    :func:`chunk_digest`, but over raw bytes — journal checkpoint and
    shard-result payloads are pickles, not canonical state dicts)."""
    return hashlib.blake2b(bytes(data), digest_size=16).hexdigest()


class FileBlobStore:
    """Content-addressed blobs on disk: ``<dir>/<digest>`` per blob.

    The durable sibling of the in-memory chunk pool, used by
    :mod:`repro.core.journal` so the event log holds digests while the
    bodies live here. Writes are atomic (temp file + ``os.replace`` in
    the same directory) and idempotent — a digest that already exists is
    never rewritten, which is what gives cross-checkpoint dedup: a
    corpus entry or frontier chunk that survives unchanged between
    checkpoints is stored once. Reads verify the content address, so a
    torn or tampered blob can never be returned as valid data.
    """

    def __init__(self, directory) -> None:
        import pathlib
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str):
        return self.directory / digest

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def put(self, data: bytes, fsync: bool = False) -> str:
        """Store *data*; returns its digest. ``fsync`` forces the blob
        to disk before the rename lands (checkpoint blobs must be
        durable *before* the journal record referencing them)."""
        import os
        digest = blob_digest(data)
        path = self._path(digest)
        if path.exists():
            return digest
        tmp = path.with_name(f".{digest}.tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
        return digest

    def get(self, digest: str) -> bytes:
        """Fetch and verify one blob; raises
        :class:`~repro.errors.JournalCorruptError` when the body no
        longer hashes to its name (rot, torn write by a pre-atomic
        version) and :class:`SnapshotError` when it is absent."""
        from repro.errors import JournalCorruptError
        path = self._path(digest)
        if not path.exists():
            raise SnapshotError(f"unknown blob {digest!r}")
        data = path.read_bytes()
        actual = blob_digest(data)
        if actual != digest:
            raise JournalCorruptError(
                f"blob {digest} fails verification: body hashes to "
                f"{actual}", digest=digest)
        return data
