"""E1b — snapshot save/restore latency per peripheral per method.

The paper's first evaluation question: "How long does it take to
save/restore a hardware state?" — measured for each corpus peripheral on

* the simulator target (CRIU process checkpoint),
* the FPGA target scan chain with the snapshot kept in on-board SRAM,
* the FPGA target scan chain with a host round-trip (SRAM disabled),
* FPGA configuration readback (capture-only, high-end devices).

Expected shapes (paper §V):
* scan time grows linearly with the chain length (design size),
* SRAM-resident scan snapshots are much faster than host transfers,
* CRIU cost is dominated by the process image — roughly flat across
  small designs and far above scan for every corpus peripheral,
* readback pays a fixed setup plus frame streaming.
"""

from benchmarks.conftest import emit, fpga_with, simulator_with
from repro.analysis import format_si_time, format_table
from repro.instrument.readback import ReadbackModel
from repro.peripherals import catalog


def _measure(spec):
    """Modelled save+restore time per method for one peripheral."""
    out = {}
    sim_target = simulator_with(spec)
    snap = sim_target.save_snapshot()
    before = sim_target.timer.total_s
    sim_target.restore_snapshot(snap)
    out["criu"] = snap.modelled_cost_s + (sim_target.timer.total_s - before)

    fpga = fpga_with(spec)
    snap = fpga.save_snapshot()
    before = fpga.timer.total_s
    fpga.restore_snapshot(snap)
    out["scan_sram"] = snap.modelled_cost_s + (fpga.timer.total_s - before)
    chain_bits = snap.bits

    fpga_nosram = fpga_with(spec, sram_bits=1)
    snap = fpga_nosram.save_snapshot()
    before = fpga_nosram.timer.total_s
    fpga_nosram.restore_snapshot(snap)
    out["scan_host"] = snap.modelled_cost_s + \
        (fpga_nosram.timer.total_s - before)

    out["readback"] = fpga.readback_snapshot().modelled_cost_s
    return chain_bits, out


def test_snapshot_latency(benchmark, corpus):
    results = benchmark.pedantic(
        lambda: {spec.name: _measure(spec) for spec in corpus},
        rounds=1, iterations=1)

    rows = []
    for spec in corpus:
        bits, times = results[spec.name]
        rows.append([spec.name, bits,
                     format_si_time(times["criu"]),
                     format_si_time(times["scan_sram"]),
                     format_si_time(times["scan_host"]),
                     format_si_time(times["readback"])])
    emit("snapshot_latency", format_table(
        ["peripheral", "chain bits", "CRIU (sim)", "scan+SRAM (fpga)",
         "scan+host (fpga)", "readback"],
        rows,
        title="E1b: hardware snapshot save+restore latency (modelled)"))

    # Shape 1: scan time tracks chain length roughly linearly.
    points = sorted((results[s.name][0], results[s.name][1]["scan_sram"])
                    for s in corpus)
    bits_small, t_small = points[0]
    bits_large, t_large = points[-1]
    assert t_large > t_small
    ratio_bits = bits_large / bits_small
    ratio_time = t_large / t_small
    assert 0.5 * ratio_bits <= ratio_time <= 2.0 * ratio_bits

    # Shape 2: SRAM-resident snapshots beat host round-trips everywhere;
    # the gap is widest on small chains (transport dominates) and
    # narrows as the shift itself starts to dominate.
    gaps = {}
    for spec in corpus:
        bits, times = results[spec.name]
        assert times["scan_sram"] < times["scan_host"] / 2, spec.name
        gaps[bits] = times["scan_host"] / times["scan_sram"]
    ordered = [gaps[b] for b in sorted(gaps)]
    assert ordered[0] > ordered[-1]

    # Shape 3: CRIU flat across small designs and far above scan.
    criu = [results[s.name][1]["criu"] for s in corpus]
    assert max(criu) / min(criu) < 1.5
    for spec in corpus:
        _, times = results[spec.name]
        assert times["criu"] > 100 * times["scan_sram"], spec.name

    # Shape 4: readback pays its fixed setup floor.
    floor = ReadbackModel().setup_s
    for spec in corpus:
        assert results[spec.name][1]["readback"] >= floor


def test_benchmark_scan_shift_host_time(benchmark):
    """Host-time cost of one scan save+restore through the real RTL shift
    (the mechanism itself, not the functional shortcut)."""
    target = fpga_with(catalog.TIMER, scan_mode="shift")

    def save_restore():
        snap = target.save_snapshot()
        target.restore_snapshot(snap)

    benchmark.pedantic(save_restore, rounds=3, iterations=1)
