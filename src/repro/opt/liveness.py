"""Backward bit-liveness from observable sinks.

A bit is *live* when changing it could change something observable.
The observables depend on the caller:

* for the optimizer, sinks are the design outputs **and** the whole
  snapshot state set (state nets and state memories) — HardSnap
  serializes S_hw byte-for-byte, so every state bit is observable even
  if it never reaches a pin;
* for the ``df-dead-state`` lint rule, sinks are the outputs alone —
  surviving dead state bits are exactly the flip-flops the scan chain
  carries for nothing.

The analysis is a demand fixpoint over bit masks: statements propagate
the demanded bits of their targets into the bits of the expressions
they read.  It over-approximates (no kill sets inside a block), which
is the safe direction for dead-code elimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.hdl import ir

_MAX_SWEEPS = 64


@dataclass
class LiveSets:
    """Result of the liveness fixpoint."""

    net_masks: Dict[str, int]
    live_memories: Set[str]

    def is_live_stmt(self, stmt: ir.Stmt) -> bool:
        """Does *stmt* (or anything nested in it) write a live bit?"""
        for sub in ir._walk_stmts([stmt]):
            if not isinstance(sub, ir.SAssign):
                continue
            for lv in ir._leaf_lvalues(sub.target):
                if isinstance(lv, ir.LNet):
                    mask = self.net_masks.get(lv.net.name, 0)
                    if lv.hi is not None:
                        sel = ((1 << (lv.hi - lv.lo + 1)) - 1) << lv.lo
                        mask &= sel
                    if mask:
                        return True
                elif isinstance(lv, ir.LNetDyn):
                    if self.net_masks.get(lv.net.name, 0):
                        return True
                elif isinstance(lv, ir.LMem):
                    if lv.memory.name in self.live_memories:
                        return True
        return False


class _Demand:
    def __init__(self, design: ir.Design):
        self.design = design
        self.net_masks: Dict[str, int] = {name: 0 for name in design.nets}
        self.live_memories: Set[str] = set()
        self.changed = False

    def demand_net(self, name: str, mask: int) -> None:
        mask &= self.design.nets[name].mask
        if mask & ~self.net_masks[name]:
            self.net_masks[name] |= mask
            self.changed = True

    def demand_memory(self, name: str) -> None:
        if name not in self.live_memories:
            self.live_memories.add(name)
            self.changed = True

    # -- expressions -------------------------------------------------------

    def demand_expr(self, expr: ir.Expr, mask: int) -> None:
        if mask == 0:
            return
        kind = type(expr)
        if kind is ir.Const:
            return
        if kind is ir.Ref:
            self.demand_net(expr.net.name, mask)
        elif kind is ir.Binary:
            self._demand_binary(expr, mask)
        elif kind is ir.Unary:
            op = expr.op
            if op == "~":
                self.demand_expr(expr.operand, mask)
            elif op == "-":
                # Borrows ripple upward: bits at or below the highest
                # demanded bit matter.
                self.demand_expr(expr.operand,
                                 _low_mask(mask.bit_length()))
            else:  # reductions and ! look at every operand bit
                self.demand_expr(expr.operand,
                                 (1 << expr.operand.width) - 1)
        elif kind is ir.Ternary:
            self.demand_expr(expr.cond, (1 << expr.cond.width) - 1)
            self.demand_expr(expr.then, mask)
            self.demand_expr(expr.other, mask)
        elif kind is ir.Concat:
            offset = sum(p.width for p in expr.parts)
            for part in expr.parts:  # first part is most significant
                offset -= part.width
                self.demand_expr(part, (mask >> offset)
                                 & ((1 << part.width) - 1))
        elif kind is ir.Slice:
            self.demand_expr(expr.value, mask << expr.lo)
        elif kind is ir.DynBit:
            self.demand_expr(expr.value, (1 << expr.value.width) - 1)
            self.demand_expr(expr.index, (1 << expr.index.width) - 1)
        elif kind is ir.MemRead:
            self.demand_memory(expr.memory.name)
            self.demand_expr(expr.index, (1 << expr.index.width) - 1)

    def _demand_binary(self, expr: ir.Binary, mask: int) -> None:
        op = expr.op
        if op in ("&", "|", "^"):
            self.demand_expr(expr.left, mask)
            self.demand_expr(expr.right, mask)
        elif op in ("+", "-", "*"):
            low = _low_mask(mask.bit_length())
            self.demand_expr(expr.left, low)
            self.demand_expr(expr.right, low)
        elif op in ("<<", ">>", ">>>"):
            if isinstance(expr.right, ir.Const):
                sh = expr.right.value
                if op == "<<":
                    self.demand_expr(expr.left, mask >> sh)
                else:
                    self.demand_expr(
                        expr.left,
                        (mask << sh) & ((1 << expr.left.width) - 1))
            else:
                self.demand_expr(expr.left, (1 << expr.left.width) - 1)
                self.demand_expr(expr.right, (1 << expr.right.width) - 1)
        else:
            # comparisons, &&/||, division: any operand bit can matter
            self.demand_expr(expr.left, (1 << expr.left.width) - 1)
            self.demand_expr(expr.right, (1 << expr.right.width) - 1)

    # -- statements --------------------------------------------------------

    def visit_stmts(self, stmts) -> bool:
        """Propagate demand; returns True when any nested stmt is live."""
        any_live = False
        for stmt in stmts:
            if isinstance(stmt, ir.SAssign):
                demand = self._target_demand(stmt.target)
                if demand:
                    self.demand_expr(stmt.value, demand)
                    any_live = True
                self._demand_target_indexes(stmt.target)
            elif isinstance(stmt, ir.SIf):
                inner = self.visit_stmts(stmt.then)
                inner |= self.visit_stmts(stmt.other)
                if inner:
                    self.demand_expr(stmt.cond, (1 << stmt.cond.width) - 1)
                    any_live = True
            elif isinstance(stmt, ir.SCase):
                inner = False
                for item in stmt.items:
                    inner |= self.visit_stmts(item.body)
                inner |= self.visit_stmts(stmt.default)
                if inner:
                    self.demand_expr(stmt.subject,
                                     (1 << stmt.subject.width) - 1)
                    any_live = True
        return any_live

    def _target_demand(self, target: ir.LValue) -> int:
        """Bits of the assigned value that land somewhere live."""
        if isinstance(target, ir.LNet):
            mask = self.net_masks[target.net.name]
            if target.hi is None:
                return mask
            return (mask >> target.lo) & ((1 << (target.hi - target.lo + 1)) - 1)
        if isinstance(target, ir.LNetDyn):
            return 1 if self.net_masks[target.net.name] else 0
        if isinstance(target, ir.LMem):
            if target.memory.name in self.live_memories:
                return target.memory.mask
            return 0
        if isinstance(target, ir.LConcat):
            demand = 0
            offset = 0
            for part in reversed(target.parts):  # last part gets low bits
                demand |= self._target_demand(part) << offset
                offset += part.width
            return demand
        raise TypeError(f"unknown lvalue {target!r}")

    def _demand_target_indexes(self, target: ir.LValue) -> None:
        for lv in ir._leaf_lvalues(target):
            if isinstance(lv, ir.LNetDyn):
                if self.net_masks[lv.net.name]:
                    self.demand_expr(lv.index, (1 << lv.index.width) - 1)
            elif isinstance(lv, ir.LMem):
                if lv.memory.name in self.live_memories:
                    self.demand_expr(lv.index, (1 << lv.index.width) - 1)


def _low_mask(bits: int) -> int:
    return (1 << bits) - 1 if bits > 0 else 0


def live_masks(design: ir.Design,
               include_state_sinks: bool = True,
               extra_live: Iterable[str] = ()) -> LiveSets:
    """Compute per-net live bit masks and the set of live memories.

    ``extra_live`` names additional fully-live sink nets (the optimizer
    passes its protected set: clock aliases, async resets, …).
    """
    demand = _Demand(design)
    for net in design.outputs:
        demand.demand_net(net.name, net.mask)
    if include_state_sinks:
        for net in design.state_nets:
            demand.demand_net(net.name, net.mask)
        for mem in design.state_memories:
            demand.demand_memory(mem.name)
    for name in extra_live:
        if name in design.nets:
            demand.demand_net(name, design.nets[name].mask)

    for _ in range(_MAX_SWEEPS):
        demand.changed = False
        for block in design.comb_blocks:
            demand.visit_stmts(block.stmts)
        for block in design.seq_blocks:
            demand.visit_stmts(block.stmts)
        for block in design.init_blocks:
            demand.visit_stmts(block.stmts)
        if not demand.changed:
            break
    else:
        # Pathological depth: declare everything live (the safe answer).
        for name, net in design.nets.items():
            demand.net_masks[name] = net.mask
        demand.live_memories.update(design.memories)
    return LiveSets(demand.net_masks, demand.live_memories)
