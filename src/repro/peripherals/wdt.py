"""Watchdog timer — the classic embedded-safety peripheral.

Counts down while enabled; firmware must feed it (write the magic value
to FEED) before it reaches zero, or the ``wdt_reset`` output fires — in a
real SoC, a system reset. Once LOCKed, the watchdog cannot be disabled,
only fed: the configuration is write-once, as on production parts.

Register map:

====== ======== ====================================================
0x00   CTRL     bit0 EN, bit1 LOCK (write-once: sets are sticky)
0x04   LOAD     countdown reload value
0x08   VALUE    current count (read-only)
0x0C   FEED     write MAGIC (0x5C) to reload; anything else is
                recorded as a bad feed and does NOT reload
0x10   STATUS   bit0 BARKED (reset fired, write-1-to-clear),
                bit8-15 bad-feed count (read-only)
====== ======== ====================================================

``wdt_reset`` stays high until STATUS.BARKED is cleared.
"""

from __future__ import annotations

from repro.peripherals.axi_skeleton import axi_module

NAME = "wdt"
ADDR_BITS = 8
IRQ = False

REGISTERS = {
    "CTRL": 0x00,
    "LOAD": 0x04,
    "VALUE": 0x08,
    "FEED": 0x0C,
    "STATUS": 0x10,
}

CTRL_EN = 1 << 0
CTRL_LOCK = 1 << 1
FEED_MAGIC = 0x5C
STATUS_BARKED = 1 << 0

_CORE = """
    reg enable;
    reg locked;
    reg [31:0] load;
    reg [31:0] value;
    reg barked;
    reg [7:0] bad_feeds;

    always @(posedge clk) begin
        if (rst) begin
            enable <= 0;
            locked <= 0;
            load <= 32'hFFFF;
            value <= 32'hFFFF;
            barked <= 0;
            bad_feeds <= 0;
        end else begin
            if (enable) begin
                if (value == 0) begin
                    barked <= 1'b1;
                    value <= load;
                end else begin
                    value <= value - 1;
                end
            end
            if (bus_wr) begin
                case (bus_waddr)
                    8'h00: begin
                        // LOCK is sticky; EN can only be set while
                        // unlocked, never cleared once locked
                        if (!locked) begin
                            enable <= bus_wdata[0];
                        end else begin
                            enable <= enable | bus_wdata[0];
                        end
                        locked <= locked | bus_wdata[1];
                    end
                    8'h04: begin
                        if (!locked) begin
                            load <= bus_wdata;
                            value <= bus_wdata;
                        end
                    end
                    8'h0C: begin
                        if (bus_wdata[7:0] == 8'h5C) begin
                            value <= load;
                        end else begin
                            bad_feeds <= bad_feeds + 1;
                        end
                    end
                    8'h10: begin
                        if (bus_wdata[0])
                            barked <= 1'b0;
                    end
                    default: begin end
                endcase
            end
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        case (bus_raddr)
            8'h00: rd_data = {30'h0, locked, enable};
            8'h04: rd_data = load;
            8'h08: rd_data = value;
            8'h10: rd_data = {16'h0, bad_feeds, 7'h0, barked};
            default: rd_data = 32'h0;
        endcase
    end

    assign wdt_reset = barked;
"""


def verilog() -> str:
    return axi_module(NAME, _CORE, ADDR_BITS,
                      extra_ports=("output wire wdt_reset",))
