#!/usr/bin/env python3
"""Quickstart: symbolically co-test a tiny firmware against a real RTL
timer peripheral, with HardSnap keeping hardware state consistent per
explored path.

Run:  python examples/quickstart.py
"""

import _bootstrap  # noqa: F401  — src/ fallback for fresh checkouts
from repro import HardSnapSession
from repro.peripherals import catalog

TIMER_BASE = 0x4000_0000

# HS32 assembly. The firmware reads a *symbolic* command, programs the
# timer accordingly, and waits for expiry by polling MMIO. Each `sym`
# value is an unknown input; the engine explores every feasible path and
# produces a concrete test case per path.
FIRMWARE = f"""
.equ TIMER, 0x{TIMER_BASE:x}

start:
    movi r1, TIMER
    sym  r2                 ; symbolic command byte
    andi r2, r2, 1
    beq  r2, r0, short_task

long_task:
    movi r3, 40
    sw   r3, 4(r1)          ; LOAD = 40
    movi r3, 1
    sw   r3, 0(r1)          ; CTRL = EN
poll_long:
    lw   r4, 12(r1)         ; STATUS
    beq  r4, r0, poll_long
    movi r5, 0xL0NG_IS_2    ; placeholder replaced below
    halt r5

short_task:
    movi r3, 5
    sw   r3, 4(r1)
    movi r3, 1
    sw   r3, 0(r1)
poll_short:
    lw   r4, 12(r1)
    beq  r4, r0, poll_short
    movi r5, 1
    halt r5
""".replace("movi r5, 0xL0NG_IS_2", "movi r5, 2")


def main() -> None:
    session = HardSnapSession(
        FIRMWARE,
        peripherals=[(catalog.TIMER, TIMER_BASE)],
        # "fpga" (default) = compiled backend + scan-chain snapshots;
        # "simulator" = interpreted backend + CRIU-style checkpoints.
        target="fpga",
    )
    report = session.run(max_instructions=100_000)

    print(report.summary())
    print()
    print("explored paths:")
    for path in report.halted_paths:
        inputs = ", ".join(f"{k}=0x{v:x}" for k, v in path.test_case.items())
        print(f"  path {path.state_id}: halt code {path.halt_code} "
              f"after {path.steps} instructions  (test case: {inputs})")
    print()
    print(f"hardware snapshots: {report.snapshot_saves} saved, "
          f"{report.snapshot_restores} restored")
    print(f"modelled analysis time: {report.modelled_time_s * 1e3:.3f} ms")
    assert sorted(report.halt_codes()) == [1, 2]


if __name__ == "__main__":
    main()
