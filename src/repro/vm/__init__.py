"""The Selective Symbolic Virtual Machine.

KLEE/Inception-style symbolic execution of HS32 firmware with MMIO
forwarding into the hardware domain:

* :class:`~repro.vm.state.ExecState` — the combined HW/SW state S,
* :class:`~repro.vm.executor.SymbolicExecutor` — instruction semantics,
  forking, detectors,
* :class:`~repro.vm.forwarding.MmioBridge` — boundary concretization
  policy (performance vs completeness),
* :mod:`~repro.vm.searchers` — SelectNextState heuristics,
* :mod:`~repro.vm.detectors` — bug records with full HW/SW context.
"""

from repro.vm.detectors import Bug
from repro.vm.executor import StepOutcome, SymbolicExecutor
from repro.vm.forwarding import (COMPLETENESS, PERFORMANCE,
                                 ConcretizationPolicy, MmioBridge)
from repro.vm.memory import SymbolicMemory
from repro.vm.searchers import (SEARCHERS, BfsSearcher, CoverageSearcher,
                                DfsSearcher, RandomSearcher, RoundRobinSearcher,
                                Searcher, SnapshotAffinitySearcher,
                                make_searcher)
from repro.vm.state import (STATUS_ACTIVE, STATUS_ERROR, STATUS_HALTED,
                            STATUS_TERMINATED, ExecState)

__all__ = [
    "ExecState", "SymbolicExecutor", "StepOutcome", "SymbolicMemory",
    "MmioBridge", "ConcretizationPolicy", "PERFORMANCE", "COMPLETENESS",
    "Bug", "Searcher", "DfsSearcher", "BfsSearcher", "RandomSearcher",
    "CoverageSearcher", "RoundRobinSearcher", "SnapshotAffinitySearcher", "make_searcher",
    "SEARCHERS", "STATUS_ACTIVE", "STATUS_HALTED", "STATUS_ERROR",
    "STATUS_TERMINATED",
]
