"""Make the examples runnable from a fresh checkout.

``import _bootstrap`` (first thing in every example) prepends the
repository's ``src/`` directory to ``sys.path`` when ``repro`` is not
already importable — so ``python examples/quickstart.py`` works without
installing the package or exporting ``PYTHONPATH=src``.
"""

import pathlib
import sys

try:
    import repro  # noqa: F401  — installed or PYTHONPATH already set
except ImportError:
    _src = pathlib.Path(__file__).resolve().parent.parent / "src"
    sys.path.insert(0, str(_src))
