"""Seeded, deterministic fault plans.

A :class:`FaultPlan` describes *where* faults may strike (per-boundary
rates plus explicit worker kills); a :class:`FaultInjector` turns the
plan into concrete decisions. Determinism is the whole design: decision
``n`` at site ``s`` is ``blake2b(f"{seed}:{scope}:{s}:{n}") / 2**64 <
rate`` — no global RNG state, no ordering sensitivity between sites, and
identical behaviour across processes given the same plan.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace
from typing import Dict, Tuple

from repro.errors import VmError

#: spec key -> FaultPlan field for :meth:`FaultPlan.parse`.
_SPEC_KEYS = {
    "seed": "seed",
    "scan_corrupt": "scan_corrupt_rate",
    "scan_drop": "scan_drop_rate",
    "scan_stall": "scan_stall_rate",
    "mmio_drop": "mmio_drop_rate",
    "transfer_timeout": "transfer_timeout_rate",
    "link_down": "link_down_rate",
    "result_loss": "result_loss_rate",
    "result_dup": "result_dup_rate",
    "kill_rate": "kill_rate",
}


@dataclass(frozen=True)
class FaultPlan:
    """What may go wrong, and how often. Plain frozen data — travels
    inside :class:`~repro.core.config.SessionConfig` to every worker."""

    seed: int = 0
    #: Link boundary: scan-shift stream corruption (CRC mismatch on the
    #: received frame), dropped frames, and stalls past the deadline.
    scan_corrupt_rate: float = 0.0
    scan_drop_rate: float = 0.0
    scan_stall_rate: float = 0.0
    #: MMIO forwarding: response lost on the debugger transport.
    mmio_drop_rate: float = 0.0
    #: Orchestrator cross-target transfers timing out.
    transfer_timeout_rate: float = 0.0
    #: Whole-link drop detected by the pre-operation health check.
    link_down_rate: float = 0.0
    #: Pool boundary: worker result message lost / delivered twice.
    result_loss_rate: float = 0.0
    result_dup_rate: float = 0.0
    #: Stochastic worker crash per job.
    kill_rate: float = 0.0
    #: Explicit kills: (worker_id, job_index) pairs; the worker's
    #: incarnation 0 dies at the start of its job_index-th lease/batch
    #: (respawned incarnations don't re-trigger explicit kills).
    worker_kills: Tuple[Tuple[int, int], ...] = ()

    @property
    def is_empty(self) -> bool:
        """True when the plan can never fire a fault."""
        return not self.worker_kills and all(
            getattr(self, f.name) == 0.0 for f in fields(self)
            if f.name.endswith("_rate"))

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a CLI spec like
        ``"seed=3,scan_corrupt=0.1,result_loss=0.05,kill=0@1"``.

        Keys are the rate names without the ``_rate`` suffix; ``kill=W@J``
        (repeatable) appends an explicit worker kill.
        """
        plan = cls()
        kills = []
        for item in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, value = item.partition("=")
            if not sep:
                raise VmError(f"bad fault-plan entry {item!r}: "
                              f"expected key=value")
            if key == "kill":
                worker, sep, job = value.partition("@")
                try:
                    kills.append((int(worker), int(job) if sep else 0))
                except ValueError:
                    raise VmError(f"bad kill spec {value!r}: "
                                  f"expected WORKER[@JOB]")
                continue
            field_name = _SPEC_KEYS.get(key)
            if field_name is None:
                raise VmError(
                    f"unknown fault-plan key {key!r}; known: "
                    f"{', '.join(sorted(_SPEC_KEYS))}, kill=W@J")
            caster = int if field_name == "seed" else float
            try:
                plan = replace(plan, **{field_name: caster(value)})
            except ValueError:
                raise VmError(f"bad fault-plan value {item!r}")
        if kills:
            plan = replace(plan, worker_kills=tuple(kills))
        return plan


class FaultInjector:
    """Turns a :class:`FaultPlan` into concrete, replayable decisions.

    Each *site* (a string naming one fault location, e.g.
    ``"scan_corrupt:uart"``) keeps its own occurrence counter, so the
    decision sequence at one site is independent of activity at every
    other — the property that keeps recovery paths from perturbing later
    fault decisions.
    """

    def __init__(self, plan: FaultPlan, scope: str = ""):
        self.plan = plan
        self.scope = scope
        self._counts: Dict[str, int] = {}

    def _hash64(self, site: str, n: int) -> int:
        token = f"{self.plan.seed}:{self.scope}:{site}:{n}".encode("ascii")
        return int.from_bytes(
            hashlib.blake2b(token, digest_size=8).digest(), "big")

    def roll(self, site: str, rate: float) -> bool:
        """One Bernoulli decision at *site* (advances its counter)."""
        n = self._counts.get(site, 0)
        self._counts[site] = n + 1
        if rate <= 0.0:
            return False
        return self._hash64(site, n) / 2.0**64 < rate

    def draw(self, site: str, modulus: int) -> int:
        """A deterministic value in ``[0, modulus)`` at *site* — used to
        pick which bit of a transmitted frame a corruption flips."""
        n = self._counts.get(site, 0)
        self._counts[site] = n + 1
        return self._hash64(site, n) % max(1, modulus)

    def should_kill(self, worker_id: int, job_index: int,
                    incarnation: int) -> bool:
        """Does this worker die at the start of this job? Explicit kills
        apply only to incarnation 0 (a respawned worker must not replay
        the same crash); stochastic kills are seeded per incarnation so
        a respawn rolls fresh decisions."""
        if incarnation == 0 and \
                (worker_id, job_index) in self.plan.worker_kills:
            return True
        return self.roll(f"kill:w{worker_id}:i{incarnation}",
                         self.plan.kill_rate)
