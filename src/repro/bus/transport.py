"""Remote-interface transport latency models.

HardSnap reaches its hardware targets through different physical
transports, whose latencies dominate I/O-forwarding cost (paper §V
measures exactly this):

* the simulator target is reached through **shared memory** on the host,
* the FPGA target through the Inception-style **USB 3.0** low-latency
  debugger (modified to translate USB commands to AXI transactions),
* the classic hardware-in-the-loop baseline (Avatar/Inception on a real
  board) through **JTAG**, included as the comparison point.

Each model prices a register access (one 32-bit word) and a bulk stream
(snapshot bitstreams). Numbers are public order-of-magnitude figures: the
benchmarks care about the *ratios* (shared memory < USB3 << JTAG), which
drive the paper's observed shapes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Transport:
    """Latency model for one remote interface."""

    name: str
    #: Fixed round-trip cost per command, seconds.
    per_access_s: float
    #: Streaming bandwidth for bulk payloads, bits per second.
    bandwidth_bits_per_s: float

    def access_latency_s(self, words: int = 1) -> float:
        """Latency of *words* individual register accesses."""
        return words * (self.per_access_s + 32.0 / self.bandwidth_bits_per_s)

    def bulk_latency_s(self, bits: int) -> float:
        """Latency of one bulk transfer of *bits* (one command round-trip
        plus streaming time)."""
        return self.per_access_s + bits / self.bandwidth_bits_per_s


#: Shared-memory mailbox between the VM and the simulator process.
SHARED_MEMORY = Transport("shared-memory", per_access_s=0.8e-6,
                          bandwidth_bits_per_s=64e9)

#: Inception's USB 3.0 debugger generating AXI transactions (paper §III-B).
USB3 = Transport("usb3", per_access_s=25e-6, bandwidth_bits_per_s=3.2e9)

#: JTAG adapter, the Avatar/Inception hardware-in-the-loop baseline.
JTAG = Transport("jtag", per_access_s=1.2e-3, bandwidth_bits_per_s=8e6)

ALL_TRANSPORTS = (SHARED_MEMORY, USB3, JTAG)


class ModelledTimer:
    """Accumulates modelled (simulated wall-clock) time.

    The paper reports durations on the authors' testbed; our substrate is
    a Python simulator, so absolute host times are meaningless. Every
    target therefore accounts *modelled* time: executed cycles divided by
    the target's clock rate, plus transport latencies. Benchmarks report
    both modelled and host time.
    """

    def __init__(self) -> None:
        self.total_s = 0.0
        self.cycles = 0
        self.transport_s = 0.0

    def add_cycles(self, cycles: int, clock_hz: float) -> None:
        self.cycles += cycles
        self.total_s += cycles / clock_hz

    def add_transport(self, seconds: float) -> None:
        self.transport_s += seconds
        self.total_s += seconds

    def add_fixed(self, seconds: float) -> None:
        self.total_s += seconds

    def snapshot(self) -> dict:
        return {"total_s": self.total_s, "cycles": self.cycles,
                "transport_s": self.transport_s}
